package obs

import "sync"

// EventStream is a live fan-out EventSink for monitoring endpoints: it
// keeps a bounded backlog ring (so a new subscriber sees recent history)
// and pushes subsequent events to subscribers over buffered channels. The
// engine emits synchronously, so delivery must never block: a subscriber
// whose channel is full loses that event, and the loss is counted
// explicitly rather than hidden. Safe for concurrent use.
type EventStream struct {
	mu      sync.Mutex
	cap     int
	backlog []Event // ring storage, len == cap once full
	next    int     // write position once full
	full    bool
	dropped int64 // events not delivered to a slow subscriber
	subs    map[int]chan Event
	nextID  int
}

// DefaultStreamBacklog bounds the backlog handed to new subscribers.
const DefaultStreamBacklog = 1024

// NewEventStream builds a stream keeping at most backlogCap events of
// history (<= 0 selects DefaultStreamBacklog).
func NewEventStream(backlogCap int) *EventStream {
	if backlogCap <= 0 {
		backlogCap = DefaultStreamBacklog
	}
	return &EventStream{cap: backlogCap, subs: make(map[int]chan Event)}
}

// Emit implements EventSink: record into the backlog ring and offer the
// event to every subscriber without blocking.
func (s *EventStream) Emit(e Event) {
	s.mu.Lock()
	if !s.full {
		s.backlog = append(s.backlog, e)
		if len(s.backlog) == s.cap {
			s.full = true
		}
	} else {
		s.backlog[s.next] = e
		s.next++
		if s.next == s.cap {
			s.next = 0
		}
	}
	for _, ch := range s.subs {
		select {
		case ch <- e:
		default:
			s.dropped++
		}
	}
	s.mu.Unlock()
}

// Subscribe registers a new listener and returns its id, the live channel
// and a copy of the current backlog (oldest first). The channel holds buf
// events (<= 0 selects DefaultStreamBacklog); events emitted while it is
// full are dropped for this subscriber and counted in Dropped.
func (s *EventStream) Subscribe(buf int) (id int, ch <-chan Event, backlog []Event) {
	if buf <= 0 {
		buf = DefaultStreamBacklog
	}
	c := make(chan Event, buf)
	s.mu.Lock()
	id = s.nextID
	s.nextID++
	s.subs[id] = c
	if s.full {
		backlog = append(backlog, s.backlog[s.next:]...)
		backlog = append(backlog, s.backlog[:s.next]...)
	} else {
		backlog = append(backlog, s.backlog...)
	}
	s.mu.Unlock()
	return id, c, backlog
}

// Unsubscribe removes a listener and closes its channel.
func (s *EventStream) Unsubscribe(id int) {
	s.mu.Lock()
	if ch, ok := s.subs[id]; ok {
		delete(s.subs, id)
		close(ch)
	}
	s.mu.Unlock()
}

// Dropped returns how many events slow subscribers missed.
func (s *EventStream) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Subscribers returns the current listener count.
func (s *EventStream) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}
