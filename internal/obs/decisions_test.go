package obs

import (
	"bytes"
	"testing"
)

func sampleRecord(slot int, mode string, ratio float64) DecisionRecord {
	return DecisionRecord{
		Slot: slot, Seconds: float64(slot) * 600, Scheme: "HEB-D",
		SCFrac: 0.8, BAFrac: 0.9, SCAvailWh: 40, BAAvailWh: 360, BudgetW: 1200,
		PredictedPeakW: 1500, PredictedValleyW: 900, PredictedPMW: 600, PredictedOverW: 300,
		Mode: mode, Ratio: ratio, Completed: true,
		ActualPeakW: 1480, ActualValleyW: 910, ActualPMW: 570, ActualOverW: 280,
		SCFracEnd: 0.5, BAFracEnd: 0.85, RatioUsed: ratio,
	}
}

func TestDecisionLogAndJSONLRoundTrip(t *testing.T) {
	l := NewDecisionLog()
	l.Append(sampleRecord(1, "supercap-first", 1))
	l.Append(sampleRecord(2, "split", 0.62))
	if l.Len() != 2 {
		t.Fatalf("len = %d, want 2", l.Len())
	}
	if r, ok := l.Slot(2); !ok || r.Mode != "split" {
		t.Fatalf("Slot(2) = %+v, %v", r, ok)
	}
	if _, ok := l.Slot(99); ok {
		t.Fatal("Slot(99) found a phantom record")
	}

	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := ReadDecisions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("round trip length %d, want 2", len(out))
	}
	for i, want := range l.Records() {
		if out[i] != want {
			t.Fatalf("record %d: %+v != %+v", i, out[i], want)
		}
	}
}

func TestDiffDecisions(t *testing.T) {
	a := []DecisionRecord{
		sampleRecord(1, "supercap-first", 1),
		sampleRecord(2, "split", 0.62),
		sampleRecord(3, "split", 0.50),
	}
	b := []DecisionRecord{
		sampleRecord(1, "supercap-first", 1),   // identical
		sampleRecord(2, "battery-first", 0.62), // mode differs
		sampleRecord(3, "split", 0.58),         // ratio differs
		sampleRecord(4, "split", 0.40),         // only in b
	}
	diffs := DiffDecisions(a, b, 0.01)
	if len(diffs) != 3 {
		t.Fatalf("got %d diffs, want 3: %+v", len(diffs), diffs)
	}
	bySlot := map[int]DecisionDiff{}
	for _, d := range diffs {
		bySlot[d.Slot] = d
	}
	if d := bySlot[2]; d.Why != "mode split vs battery-first" {
		t.Fatalf("slot 2 why = %q", d.Why)
	}
	if d := bySlot[3]; d.Why != "ratio 0.5000 vs 0.5800" {
		t.Fatalf("slot 3 why = %q", d.Why)
	}
	if d := bySlot[4]; d.Why != "slot missing from A" {
		t.Fatalf("slot 4 why = %q", d.Why)
	}
	// Within tolerance → no diff.
	if diffs := DiffDecisions(a[:1], b[:1], 0.01); len(diffs) != 0 {
		t.Fatalf("identical traces diffed: %+v", diffs)
	}
}
