package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func artifactA() RunArtifact {
	return RunArtifact{
		Key: "HEB-D|PR|1h|seed=1",
		Events: []Event{
			{Seconds: 0, Kind: EventRunStart, Server: -1, Detail: "HEB-D"},
			{Seconds: 3600, Kind: EventRunEnd, Server: -1},
		},
		Decisions:     []DecisionRecord{sampleRecord(1, "split", 0.6)},
		Steps:         3600,
		MismatchSteps: 40,
		Slots:         6,
		RelaySwitches: map[string]int64{"battery": 3, "off": 1},
		PATLookups:    6,
		PATMisses:     2,
	}
}

func artifactB() RunArtifact {
	return RunArtifact{
		Key: "BaOnly|PR|1h|seed=1",
		Events: []Event{
			{Seconds: 0, Kind: EventRunStart, Server: -1, Detail: "BaOnly"},
		},
		Decisions: []DecisionRecord{sampleRecord(1, "battery-only", 0)},
		Steps:     3600,
		Slots:     6,
	}
}

func captureFiles(t *testing.T, contribute func(*Capture)) map[string]string {
	t.Helper()
	dir := t.TempDir()
	c := NewCapture()
	contribute(c)
	if err := c.WriteFiles(dir); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string)
	for _, name := range []string{"events.jsonl", "decisions.jsonl", "metrics.prom"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		out[name] = string(b)
	}
	return out
}

func TestCaptureOrderIndependence(t *testing.T) {
	ab := captureFiles(t, func(c *Capture) {
		c.Contribute(artifactA())
		c.Contribute(artifactB())
	})
	ba := captureFiles(t, func(c *Capture) {
		c.Contribute(artifactB())
		c.Contribute(artifactA())
	})
	var wg sync.WaitGroup
	par := captureFiles(t, func(c *Capture) {
		for _, a := range []RunArtifact{artifactA(), artifactB()} {
			wg.Add(1)
			go func(a RunArtifact) {
				defer wg.Done()
				c.Contribute(a)
			}(a)
		}
		wg.Wait()
	})
	for name := range ab {
		if ab[name] != ba[name] {
			t.Errorf("%s differs between contribution orders", name)
		}
		if ab[name] != par[name] {
			t.Errorf("%s differs under concurrent contribution", name)
		}
	}
}

func TestCaptureStampsRunKeys(t *testing.T) {
	files := captureFiles(t, func(c *Capture) { c.Contribute(artifactA()) })
	events, err := ReadEvents(bytes.NewBufferString(files["events.jsonl"]))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Run != "HEB-D|PR|1h|seed=1" {
			t.Fatalf("event missing run stamp: %+v", e)
		}
	}
	decisions, err := ReadDecisions(bytes.NewBufferString(files["decisions.jsonl"]))
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != 1 || decisions[0].Run != "HEB-D|PR|1h|seed=1" {
		t.Fatalf("decisions = %+v", decisions)
	}
}

func TestCaptureMetricsContent(t *testing.T) {
	files := captureFiles(t, func(c *Capture) {
		c.Contribute(artifactA())
		c.Contribute(artifactB())
	})
	prom := files["metrics.prom"]
	for _, want := range []string{
		"heb_capture_runs_total 2",
		"heb_engine_steps_total 7200",
		"heb_engine_mismatch_steps_total 40",
		"heb_control_slots_total 12",
		`heb_power_relay_switches_total{position="battery"} 3`,
		`heb_power_relay_switches_total{position="off"} 1`,
		`heb_obs_events_total{kind="run_start"} 2`,
		"heb_pat_lookups_total 6",
		"heb_pat_misses_total 2",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("metrics.prom missing %q\n%s", want, prom)
		}
	}
}

func TestCaptureEventCap(t *testing.T) {
	c := NewCapture()
	if c.EventCap() != DefaultEventCap {
		t.Fatalf("default cap = %d", c.EventCap())
	}
	c.SetEventCap(7)
	if c.EventCap() != 7 {
		t.Fatalf("cap after set = %d", c.EventCap())
	}
}
