// Package obs is the observability layer of the HEB reproduction: a
// dependency-free metrics registry with Prometheus text exposition, a
// structured event log for the engine's discrete events (relay switches,
// sheds, pool handoffs, mismatch windows, PAT traffic), per-slot hControl
// decision records, and a deterministic multi-run capture that turns any
// sweep into diffable events.jsonl / decisions.jsonl / metrics.prom
// artifacts.
//
// The package stands in for the paper prototype's "system real-time
// running state monitoring" component (Figure 11, item 5), extended to the
// tracing substrate the evaluation itself is built from: every figure is a
// statement about observed time series, and every hControl choice should
// be replayable from its decision record.
//
// Metric naming follows heb_<subsystem>_<name>_<unit>; counters carry the
// conventional _total suffix.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name/value pair attached to a metric series.
type Label struct {
	Name, Value string
}

// metricKind discriminates the family types.
type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	default:
		return fmt.Sprintf("metricKind(%d)", int(k))
	}
}

// Registry holds metric families and exposes them in Prometheus text
// format. It is safe for concurrent use: getters return live instrument
// handles whose Inc/Add/Set/Observe methods are lock-free (counters and
// gauges) or briefly locked (histograms).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

type family struct {
	name, help string
	kind       metricKind
	bounds     []float64 // histogram upper bounds, sorted

	mu     sync.Mutex
	series map[string]any // rendered label string -> *Counter/*Gauge/*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels produces the canonical label string: names sorted, values
// escaped, e.g. `{position="battery",scheme="HEB-D"}`; empty for none.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// getFamily returns the named family, creating it on first use; a name
// reused with a different type or bucket layout is a programming error and
// panics.
func (r *Registry) getFamily(name, help string, kind metricKind, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind,
			bounds: append([]float64(nil), bounds...),
			series: make(map[string]any)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, kind))
	}
	return f
}

// Counter returns the counter for name + labels, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.getFamily(name, help, counterKind, nil)
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.series[key]; ok {
		return c.(*Counter)
	}
	c := &Counter{}
	f.series[key] = c
	return c
}

// Gauge returns the gauge for name + labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.getFamily(name, help, gaugeKind, nil)
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if g, ok := f.series[key]; ok {
		return g.(*Gauge)
	}
	g := &Gauge{}
	f.series[key] = g
	return g
}

// Histogram returns the histogram for name + labels, creating it on first
// use with the given fixed upper bounds (sorted ascending; an implicit
// +Inf bucket is always appended).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	sorted := append([]float64(nil), bounds...)
	sort.Float64s(sorted)
	f := r.getFamily(name, help, histogramKind, sorted)
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if h, ok := f.series[key]; ok {
		return h.(*Histogram)
	}
	h := newHistogram(f.bounds)
	f.series[key] = h
	return h
}

// Counter is a monotonically increasing value. The zero value is ready to
// use, but counters should be obtained from a Registry to be exported.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are ignored (counters are
// monotonic by contract).
func (c *Counter) Add(v float64) {
	if v <= 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by v (negative allowed).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds; implicit +Inf appended
	counts []uint64  // len(bounds)+1
	sum    float64
	count  uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshotLocked copies the histogram state.
func (h *Histogram) snapshot() (counts []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.counts...), h.sum, h.count
}

// LinearBuckets returns count bounds starting at start, width apart.
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns count bounds starting at start, each factor
// times the previous.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Sample is one exported series value; histograms are flattened into
// _bucket/_sum/_count samples like the text exposition.
type Sample struct {
	// Name is the metric name (with _bucket/_sum/_count suffixes for
	// histogram components).
	Name string
	// Labels is the canonical rendered label string, "" when unlabeled.
	Labels string
	// Value is the sample value.
	Value float64
}

// Snapshot returns every series as a deterministic, sorted sample list —
// the comparison form tests assert against.
func (r *Registry) Snapshot() []Sample {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	var out []Sample
	for _, f := range fams {
		for _, key := range f.sortedKeys() {
			f.mu.Lock()
			s := f.series[key]
			f.mu.Unlock()
			switch m := s.(type) {
			case *Counter:
				out = append(out, Sample{f.name, key, m.Value()})
			case *Gauge:
				out = append(out, Sample{f.name, key, m.Value()})
			case *Histogram:
				counts, sum, count := m.snapshot()
				cum := uint64(0)
				for i, b := range f.bounds {
					cum += counts[i]
					out = append(out, Sample{f.name + "_bucket", mergeLabels(key, "le", formatFloat(b)), float64(cum)})
				}
				cum += counts[len(f.bounds)]
				out = append(out, Sample{f.name + "_bucket", mergeLabels(key, "le", "+Inf"), float64(cum)})
				out = append(out, Sample{f.name + "_sum", key, sum})
				out = append(out, Sample{f.name + "_count", key, float64(count)})
			}
		}
	}
	return out
}

// Get returns the snapshot value of one series (histograms: use the
// flattened _sum/_count/_bucket names). ok is false when absent.
func (r *Registry) Get(name string, labels ...Label) (v float64, ok bool) {
	key := renderLabels(labels)
	for _, s := range r.Snapshot() {
		if s.Name == name && s.Labels == key {
			return s.Value, true
		}
	}
	return 0, false
}

func (f *family) sortedKeys() []string {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	f.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// mergeLabels inserts one extra label pair into an already-rendered label
// string, keeping name order.
func mergeLabels(rendered, name, value string) string {
	extra := name + `="` + escapeLabelValue(value) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	// Insert in sorted position among the existing pairs.
	inner := rendered[1 : len(rendered)-1]
	parts := strings.Split(inner, ",")
	at := len(parts)
	for i, p := range parts {
		if name < p[:strings.IndexByte(p, '=')] {
			at = i
			break
		}
	}
	parts = append(parts[:at], append([]string{extra}, parts[at:]...)...)
	return "{" + strings.Join(parts, ",") + "}"
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the registry in Prometheus text exposition format
// (version 0.0.4). The output is deterministic: families sorted by name,
// series sorted by label string.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, key := range f.sortedKeys() {
			f.mu.Lock()
			s := f.series[key]
			f.mu.Unlock()
			switch m := s.(type) {
			case *Counter:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, key, formatFloat(m.Value())); err != nil {
					return err
				}
			case *Gauge:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, key, formatFloat(m.Value())); err != nil {
					return err
				}
			case *Histogram:
				counts, sum, count := m.snapshot()
				cum := uint64(0)
				for i, b := range f.bounds {
					cum += counts[i]
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, mergeLabels(key, "le", formatFloat(b)), cum); err != nil {
						return err
					}
				}
				cum += counts[len(f.bounds)]
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, mergeLabels(key, "le", "+Inf"), cum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, key, formatFloat(sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, key, count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Handler serves the registry at its mount point (conventionally
// /metrics) in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
