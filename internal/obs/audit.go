package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// AuditMode selects how much the energy-conservation auditor interferes
// with a run.
type AuditMode uint8

const (
	// AuditModeOff disables auditing entirely (the zero value): no ledger, no
	// checks, no allocations.
	AuditModeOff AuditMode = iota
	// AuditModeReport runs the full ledger and bound checks and reports
	// the result, but never interrupts the run.
	AuditModeReport
	// AuditModeStrict is AuditModeReport plus fail-fast: the engine aborts
	// the run at the first violation and the caller surfaces an error.
	AuditModeStrict
)

// String names the mode as accepted by ParseAuditMode.
func (m AuditMode) String() string {
	switch m {
	case AuditModeOff:
		return "off"
	case AuditModeReport:
		return "report"
	case AuditModeStrict:
		return "strict"
	default:
		return fmt.Sprintf("AuditMode(%d)", int(m))
	}
}

// ParseAuditMode inverts String.
func ParseAuditMode(s string) (AuditMode, error) {
	switch s {
	case "off":
		return AuditModeOff, nil
	case "report":
		return AuditModeReport, nil
	case "strict":
		return AuditModeStrict, nil
	}
	return AuditModeOff, fmt.Errorf("obs: unknown audit mode %q (want off, report or strict)", s)
}

// AuditKind classifies auditor findings.
type AuditKind uint8

const (
	// AuditLedgerDrift is a per-step bus-ledger mismatch above tolerance.
	AuditLedgerDrift AuditKind = iota
	// AuditSoCBound is a device state of charge outside [0, 1] or a
	// negative/overfull charge well.
	AuditSoCBound
	// AuditVoltageBound is a device open-circuit voltage outside its legal
	// window.
	AuditVoltageBound
	// AuditChargeBound is stored charge above chemical capacity or a
	// negative well.
	AuditChargeBound
	// AuditRelayExclusivity is a relay fabric whose per-source totals do
	// not partition the servers.
	AuditRelayExclusivity

	numAuditKinds // sentinel
)

var auditKindNames = [numAuditKinds]string{
	"ledger_drift", "soc_bound", "voltage_bound", "charge_bound", "relay_exclusivity",
}

// String names the kind as it appears in audit artifacts.
func (k AuditKind) String() string {
	if int(k) < len(auditKindNames) {
		return auditKindNames[k]
	}
	return fmt.Sprintf("AuditKind(%d)", int(k))
}

// MarshalJSON encodes the kind as its string name.
func (k AuditKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes a string kind name.
func (k *AuditKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, name := range auditKindNames {
		if name == s {
			*k = AuditKind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown audit kind %q", s)
}

// AuditEvent is one typed violation the auditor observed.
type AuditEvent struct {
	// Seconds is the simulation time of the finding.
	Seconds float64 `json:"t"`
	// Kind classifies the violation.
	Kind AuditKind `json:"kind"`
	// Device names the offending device, empty for bus/fabric findings.
	Device string `json:"device,omitempty"`
	// Value and Limit quantify the violation (e.g. drift and tolerance).
	Value float64 `json:"value"`
	Limit float64 `json:"limit"`
	// Detail is free-form context.
	Detail string `json:"detail,omitempty"`
}

// DeviceResidual is one device's run-long energy ledger residual:
// In − Out − Loss − ΔStored at the device terminals, in watt-hours. The
// residual is informational, not gated: stored energy is valued at the
// moving open-circuit voltage, so revaluation keeps it from closing to
// zero even in a correct model.
type DeviceResidual struct {
	Device     string  `json:"device"`
	InWh       float64 `json:"in_wh"`
	OutWh      float64 `json:"out_wh"`
	LossWh     float64 `json:"loss_wh"`
	DeltaWh    float64 `json:"delta_wh"`
	ResidualWh float64 `json:"residual_wh"`
}

// auditEventCap bounds the stored violation events per run; overflow is
// counted in AuditReport.Violations but not stored.
const auditEventCap = 32

// Auditor accumulates the per-step energy-conservation ledger of one run
// and collects typed violations. It is not safe for concurrent use; each
// run owns its own auditor.
type Auditor struct {
	mode      AuditMode
	tolerance float64

	steps       int64
	inWh, outWh float64
	maxStepWh   float64 // largest single-step |in-out| seen

	violations int64
	events     []AuditEvent
	violated   bool

	devices []DeviceResidual
	started map[string]int
}

// DefaultAuditTolerance is the relative ledger drift above which a run
// fails its audit.
const DefaultAuditTolerance = 1e-6

// NewAuditor builds an auditor for mode; tolerance <= 0 selects
// DefaultAuditTolerance. A nil auditor is valid and disabled.
func NewAuditor(mode AuditMode, tolerance float64) *Auditor {
	if mode == AuditModeOff {
		return nil
	}
	if tolerance <= 0 {
		tolerance = DefaultAuditTolerance
	}
	return &Auditor{mode: mode, tolerance: tolerance, started: make(map[string]int)}
}

// Mode returns the auditor's mode (AuditModeOff for nil).
func (a *Auditor) Mode() AuditMode {
	if a == nil {
		return AuditModeOff
	}
	return a.mode
}

// Strict reports whether the auditor wants fail-fast behaviour.
func (a *Auditor) Strict() bool { return a != nil && a.mode == AuditModeStrict }

// Violated reports whether any check has failed so far; in strict mode the
// engine stops stepping once this turns true.
func (a *Auditor) Violated() bool { return a != nil && a.violated }

// RecordStep feeds one step's bus ledger: inWh is the energy entering the
// bus boundary this step, outWh the energy leaving it (load, charge,
// modeled losses, spill). Per-step mismatch beyond tolerance (relative to
// the step's magnitude, with an absolute floor) is flagged as drift.
func (a *Auditor) RecordStep(sec float64, inWh, outWh float64) {
	a.steps++
	a.inWh += inWh
	a.outWh += outWh
	diff := math.Abs(inWh - outWh)
	if diff > a.maxStepWh {
		a.maxStepWh = diff
	}
	scale := math.Max(math.Abs(inWh), math.Abs(outWh))
	// The absolute floor keeps idle steps (microwatt-hours of leakage)
	// from tripping on float noise.
	if diff > a.tolerance*scale && diff > 1e-9 {
		a.Flag(AuditEvent{
			Seconds: sec,
			Kind:    AuditLedgerDrift,
			Value:   diff,
			Limit:   a.tolerance * scale,
			Detail:  fmt.Sprintf("in %.9g Wh, out %.9g Wh", inWh, outWh),
		})
	}
}

// Flag records one violation event, deduplicating storage past the cap.
func (a *Auditor) Flag(e AuditEvent) {
	a.violated = true
	a.violations++
	if len(a.events) < auditEventCap {
		a.events = append(a.events, e)
	}
}

// StartDevice opens a device's run-long terminal ledger with its starting
// cumulative stats and stored energy (all watt-hours).
func (a *Auditor) StartDevice(device string, inWh, outWh, lossWh, storedWh float64) {
	a.started[device] = len(a.devices)
	a.devices = append(a.devices, DeviceResidual{
		Device:  device,
		InWh:    -inWh,
		OutWh:   -outWh,
		LossWh:  -lossWh,
		DeltaWh: -storedWh,
	})
}

// EndDevice closes a device ledger with its final cumulative stats and
// stored energy; the residual becomes In − Out − Loss − ΔStored.
func (a *Auditor) EndDevice(device string, inWh, outWh, lossWh, storedWh float64) {
	i, ok := a.started[device]
	if !ok {
		return
	}
	d := &a.devices[i]
	d.InWh += inWh
	d.OutWh += outWh
	d.LossWh += lossWh
	d.DeltaWh += storedWh
	d.ResidualWh = d.InWh - d.OutWh - d.LossWh - d.DeltaWh
}

// AuditReport is the end-of-run verdict of one auditor.
type AuditReport struct {
	// Mode the audit ran in.
	Mode string `json:"mode"`
	// Steps is how many steps fed the ledger.
	Steps int64 `json:"steps"`
	// EnergyInWh and EnergyOutWh are the run totals over the bus boundary.
	EnergyInWh  float64 `json:"in_wh"`
	EnergyOutWh float64 `json:"out_wh"`
	// DriftWh is the accumulated signed ledger drift (in − out).
	DriftWh float64 `json:"drift_wh"`
	// RelDrift is |DriftWh| relative to the larger run total.
	RelDrift float64 `json:"rel_drift"`
	// MaxStepWh is the largest single-step absolute mismatch.
	MaxStepWh float64 `json:"max_step_wh"`
	// Tolerance is the relative drift limit the run was held to.
	Tolerance float64 `json:"tolerance"`
	// Violations counts every flagged event, including ones past the
	// storage cap.
	Violations int64 `json:"violations"`
	// Events holds the first stored violations (capped).
	Events []AuditEvent `json:"events,omitempty"`
	// Devices holds the informational per-device terminal residuals.
	Devices []DeviceResidual `json:"devices,omitempty"`
	// Passed is true when no violation fired and the run-long relative
	// drift is within tolerance.
	Passed bool `json:"passed"`
	// Run labels the originating run in multi-run artifacts.
	Run string `json:"run,omitempty"`
}

// Report closes the audit and returns the verdict. Safe on a nil auditor
// (returns a zero report marked passed with mode off).
func (a *Auditor) Report() AuditReport {
	if a == nil {
		return AuditReport{Mode: AuditModeOff.String(), Passed: true}
	}
	r := AuditReport{
		Mode:        a.mode.String(),
		Steps:       a.steps,
		EnergyInWh:  a.inWh,
		EnergyOutWh: a.outWh,
		DriftWh:     a.inWh - a.outWh,
		MaxStepWh:   a.maxStepWh,
		Tolerance:   a.tolerance,
		Violations:  a.violations,
		Events:      append([]AuditEvent(nil), a.events...),
		Devices:     append([]DeviceResidual(nil), a.devices...),
	}
	if scale := math.Max(math.Abs(a.inWh), math.Abs(a.outWh)); scale > 0 {
		r.RelDrift = math.Abs(r.DriftWh) / scale
	}
	r.Passed = !a.violated && r.RelDrift <= a.tolerance
	return r
}

// Summary renders a one-line human verdict.
func (r AuditReport) Summary() string {
	verdict := "PASS"
	if !r.Passed {
		verdict = "FAIL"
	}
	return fmt.Sprintf("audit %s: %s steps=%d in=%.3fWh out=%.3fWh drift=%.3gWh rel=%.3g violations=%d",
		verdict, r.Mode, r.Steps, r.EnergyInWh, r.EnergyOutWh, r.DriftWh, r.RelDrift, r.Violations)
}

// AuditLog collects per-run audit reports across a sweep. It is safe for
// concurrent use.
type AuditLog struct {
	mu      sync.Mutex
	reports []AuditReport
}

// NewAuditLog builds an empty collector.
func NewAuditLog() *AuditLog { return &AuditLog{} }

// Add stores one run's report under its run key.
func (l *AuditLog) Add(run string, r AuditReport) {
	r.Run = run
	l.mu.Lock()
	l.reports = append(l.reports, r)
	l.mu.Unlock()
}

// Reports returns the stored reports sorted by run key.
func (l *AuditLog) Reports() []AuditReport {
	l.mu.Lock()
	out := append([]AuditReport(nil), l.reports...)
	l.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Run < out[j].Run })
	return out
}

// Failed returns the stored reports that did not pass, sorted by run key.
func (l *AuditLog) Failed() []AuditReport {
	var out []AuditReport
	for _, r := range l.Reports() {
		if !r.Passed {
			out = append(out, r)
		}
	}
	return out
}

// WriteAuditsJSONL writes reports one JSON object per line.
func WriteAuditsJSONL(w io.Writer, reports []AuditReport) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range reports {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("obs: write audits: %w", err)
		}
	}
	return bw.Flush()
}

// ReadAudits parses a JSONL stream written by WriteAuditsJSONL.
func ReadAudits(r io.Reader) ([]AuditReport, error) {
	var out []AuditReport
	dec := json.NewDecoder(r)
	for {
		var a AuditReport
		if err := dec.Decode(&a); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("obs: read audits: %w", err)
		}
		out = append(out, a)
	}
}
