package obs

import (
	"bytes"
	"testing"
)

// buildTrace makes a tracer with two tracks in the given creation order;
// content is identical either way, exercising the writer's sorting.
func buildTrace(order []string) *Tracer {
	tr := NewTracer()
	for _, name := range order {
		track := tr.NewTrack("cellA", name)
		track.Begin("run", "engine")
		track.Begin("plan", "control")
		track.Advance(VirtualPlanUS)
		track.End()
		track.Begin("steps", "engine")
		track.Advance(10 * VirtualStepUS)
		track.End()
		track.End()
	}
	return tr
}

func TestTracerOutputIndependentOfTrackCreationOrder(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildTrace([]string{"run1", "run2"}).WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildTrace([]string{"run2", "run1"}).WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("trace bytes depend on track creation order")
	}
}

func TestTracerProducesValidRoundTrippableTrace(t *testing.T) {
	tr := buildTrace([]string{"run1", "run2"})
	events := tr.Events()
	if err := ValidateTrace(events); err != nil {
		t.Fatalf("tracer output invalid: %v", err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round-trip lost events: %d -> %d", len(events), len(back))
	}
	if err := ValidateTrace(back); err != nil {
		t.Errorf("round-tripped trace invalid: %v", err)
	}
	// Two tracks in one group: one process metadata, two thread metadata.
	var procs, threads, spans int
	for _, e := range back {
		switch {
		case e.Phase == "M" && e.Name == "process_name":
			procs++
		case e.Phase == "M" && e.Name == "thread_name":
			threads++
		case e.Phase == "X":
			spans++
		}
	}
	if procs != 1 || threads != 2 || spans != 6 {
		t.Errorf("got %d processes, %d threads, %d spans; want 1/2/6", procs, threads, spans)
	}
}

func TestVirtualClockNesting(t *testing.T) {
	tr := NewTracer()
	track := tr.NewTrack("g", "t")
	track.Begin("outer", "x")
	track.Advance(5)
	track.Begin("inner", "x")
	track.Advance(10)
	track.End()
	track.Advance(3)
	track.End()

	var outer, inner *TraceEvent
	for i, e := range tr.Events() {
		if e.Phase != "X" {
			continue
		}
		switch e.Name {
		case "outer":
			outer = &tr.Events()[i]
		case "inner":
			inner = &tr.Events()[i]
		}
	}
	if outer == nil || inner == nil {
		t.Fatal("spans missing")
	}
	if outer.TS != 0 || outer.Dur != 18 {
		t.Errorf("outer ts=%d dur=%d, want 0/18", outer.TS, outer.Dur)
	}
	if inner.TS != 5 || inner.Dur != 10 {
		t.Errorf("inner ts=%d dur=%d, want 5/10", inner.TS, inner.Dur)
	}
}

func TestNilTrackIsSafe(t *testing.T) {
	var track *Track
	track.Begin("a", "b")
	track.Advance(10)
	track.End()
}

func TestWallTracerAdvanceIsNoOp(t *testing.T) {
	tr := NewWallTracer()
	if !tr.Wall() {
		t.Fatal("wall tracer not wall")
	}
	track := tr.NewTrack("g", "t")
	track.Begin("span", "x")
	track.Advance(1 << 40) // must not teleport the clock
	track.End()
	events := tr.Events()
	if err := ValidateTrace(events); err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Phase == "X" && e.Dur > 1<<39 {
			t.Errorf("wall span inherited virtual advance: dur %d", e.Dur)
		}
	}
}

func TestValidateTraceRejectsMalformed(t *testing.T) {
	cases := map[string][]TraceEvent{
		"unknown phase": {{Name: "x", Phase: "B", PID: 1, TID: 1}},
		"unnamed span":  {{Phase: "X", PID: 1, TID: 1}},
		"negative dur":  {{Name: "x", Phase: "X", TS: 0, Dur: -1, PID: 1, TID: 1}},
		"bad metadata":  {{Name: "weird_meta", Phase: "M", PID: 1}},
		"meta no name":  {{Name: "process_name", Phase: "M", PID: 1, Args: map[string]any{}}},
		"overlap": {
			{Name: "a", Phase: "X", TS: 0, Dur: 10, PID: 1, TID: 1},
			{Name: "b", Phase: "X", TS: 5, Dur: 10, PID: 1, TID: 1},
		},
	}
	for name, events := range cases {
		if err := ValidateTrace(events); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Disjoint and properly nested events pass.
	ok := []TraceEvent{
		{Name: "a", Phase: "X", TS: 0, Dur: 10, PID: 1, TID: 1},
		{Name: "b", Phase: "X", TS: 2, Dur: 5, PID: 1, TID: 1},
		{Name: "c", Phase: "X", TS: 20, Dur: 5, PID: 1, TID: 1},
		// Same window on another thread is unrelated.
		{Name: "d", Phase: "X", TS: 5, Dur: 100, PID: 1, TID: 2},
	}
	if err := ValidateTrace(ok); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
}

func TestRollupSelfTime(t *testing.T) {
	events := []TraceEvent{
		{Name: "run", Phase: "X", TS: 0, Dur: 100, PID: 1, TID: 1},
		{Name: "plan", Phase: "X", TS: 0, Dur: 10, PID: 1, TID: 1},
		{Name: "steps", Phase: "X", TS: 10, Dur: 80, PID: 1, TID: 1},
		{Name: "plan", Phase: "X", TS: 90, Dur: 10, PID: 1, TID: 1},
		// A second thread contributes to the same phase names.
		{Name: "run", Phase: "X", TS: 0, Dur: 50, PID: 1, TID: 2},
		{Name: "steps", Phase: "X", TS: 0, Dur: 50, PID: 1, TID: 2},
	}
	stats := Rollup(events)
	byName := map[string]PhaseStat{}
	for _, s := range stats {
		byName[s.Name] = s
	}
	if s := byName["run"]; s.Count != 2 || s.TotalUS != 150 || s.SelfUS != 0 {
		t.Errorf("run rollup %+v", s)
	}
	if s := byName["steps"]; s.Count != 2 || s.TotalUS != 130 || s.SelfUS != 130 {
		t.Errorf("steps rollup %+v", s)
	}
	if s := byName["plan"]; s.Count != 2 || s.TotalUS != 20 || s.SelfUS != 20 {
		t.Errorf("plan rollup %+v", s)
	}
	// Sorted by self time descending.
	if stats[0].Name != "steps" {
		t.Errorf("hottest phase %q, want steps", stats[0].Name)
	}
}
