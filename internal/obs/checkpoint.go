package obs

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// CheckpointVersion is the schema version stamped into every record; a
// reader that sees a higher version must refuse to restore from it.
const CheckpointVersion = 1

// CheckpointRecord is one flight-recorder snapshot: the full serialized
// simulation state at a slot boundary, hash-chained to its predecessor so
// a checkpoint file is tamper- and truncation-evident and two runs can be
// bisected by comparing chains. Records are written to checkpoints.jsonl.
//
// The hash covers everything except Run: the run key is stamped late (by
// obs.Capture.Contribute, like events and decisions), so it must not
// participate in the chain.
type CheckpointRecord struct {
	// V is the schema version (CheckpointVersion).
	V int `json:"v"`
	// Run labels the originating run in multi-run artifacts.
	Run string `json:"run,omitempty"`
	// Slot is the number of completed control slots at snapshot time; it
	// is strictly increasing within a run's chain.
	Slot int `json:"slot"`
	// Step is the number of executed engine steps (the snapshot is taken
	// at the slot boundary before step Step executes).
	Step int `json:"step"`
	// Seconds is the simulation time of the snapshot.
	Seconds float64 `json:"t"`
	// State is the serialized simulation state (engine + obs sinks).
	State json.RawMessage `json:"state"`
	// Prev is the previous record's Hash ("" for the first record).
	Prev string `json:"prev,omitempty"`
	// Hash chains V, Slot, Step, Seconds, Prev and State.
	Hash string `json:"hash"`
}

// HashCheckpoint computes the record's chain hash from its own fields
// (ignoring the stored Hash and the late-stamped Run label).
func HashCheckpoint(r CheckpointRecord) string {
	h := sha256.New()
	fmt.Fprintf(h, "v=%d|slot=%d|step=%d|t=%g|prev=%s|", r.V, r.Slot, r.Step, r.Seconds, r.Prev)
	h.Write(r.State)
	return hex.EncodeToString(h.Sum(nil))
}

// CheckpointLog accumulates one run's hash-chained checkpoint records.
// Safe for concurrent use (each run owns its own log, but a shared sink
// may flush while the engine appends).
type CheckpointLog struct {
	mu      sync.Mutex
	records []CheckpointRecord
	prev    string
}

// NewCheckpointLog builds an empty log.
func NewCheckpointLog() *CheckpointLog { return &CheckpointLog{} }

// Seed preloads a previously captured chain so a resumed run's log starts
// where the interrupted run left off: the carried records reappear in
// Records() (keeping the written artifact byte-identical to an
// uninterrupted run) and new appends chain off the last carried hash.
func (l *CheckpointLog) Seed(records []CheckpointRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.records = append([]CheckpointRecord(nil), records...)
	if n := len(l.records); n > 0 {
		l.prev = l.records[n-1].Hash
	}
}

// Append chains and stores one snapshot, returning the finished record.
func (l *CheckpointLog) Append(slot, step int, seconds float64, state json.RawMessage) CheckpointRecord {
	rec := CheckpointRecord{
		V:       CheckpointVersion,
		Slot:    slot,
		Step:    step,
		Seconds: seconds,
		State:   append(json.RawMessage(nil), state...),
	}
	l.mu.Lock()
	rec.Prev = l.prev
	rec.Hash = HashCheckpoint(rec)
	l.prev = rec.Hash
	l.records = append(l.records, rec)
	l.mu.Unlock()
	return rec
}

// Len returns the number of stored records.
func (l *CheckpointLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Records returns a copy of the stored records in chain order.
func (l *CheckpointLog) Records() []CheckpointRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]CheckpointRecord(nil), l.records...)
}

// WriteCheckpointsJSONL writes records one JSON object per line.
func WriteCheckpointsJSONL(w io.Writer, records []CheckpointRecord) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range records {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("obs: write checkpoints: %w", err)
		}
	}
	return bw.Flush()
}

// ReadCheckpoints parses a JSONL stream written by WriteCheckpointsJSONL.
func ReadCheckpoints(r io.Reader) ([]CheckpointRecord, error) {
	var out []CheckpointRecord
	dec := json.NewDecoder(r)
	for {
		var rec CheckpointRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("obs: read checkpoints: %w", err)
		}
		out = append(out, rec)
	}
}

// ValidateCheckpoints checks a checkpoint stream's structural invariants,
// per run label: known schema version, strictly increasing slot index,
// intact prev links and recomputable hashes. Records of different runs may
// interleave arbitrarily (a multi-run capture concatenates sorted runs).
func ValidateCheckpoints(records []CheckpointRecord) error {
	type chainState struct {
		prev     string
		lastSlot int
		started  bool
	}
	chains := make(map[string]*chainState)
	for i, r := range records {
		if r.V != CheckpointVersion {
			return fmt.Errorf("obs: checkpoint %d: unknown schema version %d (want %d)", i, r.V, CheckpointVersion)
		}
		c := chains[r.Run]
		if c == nil {
			c = &chainState{}
			chains[r.Run] = c
		}
		if c.started && r.Slot <= c.lastSlot {
			return fmt.Errorf("obs: checkpoint %d: slot %d not above previous slot %d", i, r.Slot, c.lastSlot)
		}
		if r.Prev != c.prev {
			return fmt.Errorf("obs: checkpoint %d (slot %d): broken chain: prev %.12s != expected %.12s", i, r.Slot, r.Prev, c.prev)
		}
		if got := HashCheckpoint(r); got != r.Hash {
			return fmt.Errorf("obs: checkpoint %d (slot %d): hash mismatch: stored %.12s, computed %.12s", i, r.Slot, r.Hash, got)
		}
		c.prev = r.Hash
		c.lastSlot = r.Slot
		c.started = true
	}
	return nil
}
