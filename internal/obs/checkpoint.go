package obs

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"strings"
	"sync"
)

// CheckpointVersion is the schema version stamped into every record; a
// reader that sees a higher version must refuse to restore from it.
// Version history:
//
//	v1 — full-state records only.
//	v2 — adds delta records: State may carry only the suffix grown since
//	     the previous record for append-only series (paired "<key>@base"
//	     fields hold the splice offsets) and only the changed elements of
//	     keyed collections (paired "<key>@mergekey" fields name the
//	     identity field, "<key>@drop" lists removed identities), with a
//	     full keyframe every DefaultKeyframeEvery records. Readers accept
//	     both versions, and mixed v1/v2 chains (a pre-upgrade capture
//	     resumed post-upgrade) validate and materialize normally.
const CheckpointVersion = 2

// checkpointMinVersion is the oldest schema readers still accept.
const checkpointMinVersion = 1

// DefaultKeyframeEvery is the keyframe cadence for delta-encoded chains:
// record indices divisible by it carry full state, so any record
// materializes by scanning back at most DefaultKeyframeEvery-1 records —
// seeking stays O(1) in the chain length.
const DefaultKeyframeEvery = 8

// CheckpointRecord is one flight-recorder snapshot: the serialized
// simulation state at a slot boundary, hash-chained to its predecessor so
// a checkpoint file is tamper- and truncation-evident and two runs can be
// bisected by comparing chains. Records are written to checkpoints.jsonl.
//
// The hash covers everything except Run: the run key is stamped late (by
// obs.Capture.Contribute, like events and decisions), so it must not
// participate in the chain.
type CheckpointRecord struct {
	// V is the schema version (CheckpointVersion).
	V int `json:"v"`
	// Run labels the originating run in multi-run artifacts.
	Run string `json:"run,omitempty"`
	// Slot is the number of completed control slots at snapshot time; it
	// is strictly increasing within a run's chain.
	Slot int `json:"slot"`
	// Step is the number of executed engine steps (the snapshot is taken
	// at the slot boundary before step Step executes).
	Step int `json:"step"`
	// Seconds is the simulation time of the snapshot.
	Seconds float64 `json:"t"`
	// State is the serialized simulation state (engine + obs sinks). In a
	// delta record (v2), append-only series inside it carry only their
	// suffix beyond the previous record, tagged by "<key>@base" offsets;
	// MaterializeAt reconstructs the full state.
	State json.RawMessage `json:"state"`
	// Delta marks a v2 record whose State is encoded against the previous
	// record of the same run. The first record of a chain is never a delta.
	Delta bool `json:"delta,omitempty"`
	// Prev is the previous record's Hash ("" for the first record).
	Prev string `json:"prev,omitempty"`
	// Hash chains V, Slot, Step, Seconds, Delta (v2+), Prev and State.
	Hash string `json:"hash"`
}

// crc32c is the Castagnoli table, hardware-accelerated on amd64/arm64.
var crc32c = crc32.MakeTable(crc32.Castagnoli)

// HashCheckpoint computes the record's chain hash from its own fields
// (ignoring the stored Hash and the late-stamped Run label). v1 records
// keep the original preimage layout so pre-upgrade chains still verify.
// In v2 the state payload contributes through its length and a CRC-32C
// digest rather than being fed through SHA-256 whole: the chain hash
// still pins ordering and every payload byte, but the emission path
// pays a hardware CRC over the record instead of a full cryptographic
// hash — about a tenth of the cost on the slot boundary.
func HashCheckpoint(r CheckpointRecord) string {
	h := sha256.New()
	if r.V >= 2 {
		fmt.Fprintf(h, "v=%d|slot=%d|step=%d|t=%g|delta=%t|prev=%s|len=%d|crc=%08x",
			r.V, r.Slot, r.Step, r.Seconds, r.Delta, r.Prev, len(r.State), crc32.Checksum(r.State, crc32c))
	} else {
		fmt.Fprintf(h, "v=%d|slot=%d|step=%d|t=%g|prev=%s|", r.V, r.Slot, r.Step, r.Seconds, r.Prev)
		h.Write(r.State)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CheckpointLog accumulates one run's hash-chained checkpoint records.
// Safe for concurrent use (each run owns its own log, but a shared sink
// may flush while the engine appends).
type CheckpointLog struct {
	mu      sync.Mutex
	records []CheckpointRecord
	prev    string
}

// NewCheckpointLog builds an empty log.
func NewCheckpointLog() *CheckpointLog { return &CheckpointLog{} }

// Seed preloads a previously captured chain so a resumed run's log starts
// where the interrupted run left off: the carried records reappear in
// Records() (keeping the written artifact byte-identical to an
// uninterrupted run) and new appends chain off the last carried hash.
func (l *CheckpointLog) Seed(records []CheckpointRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.records = append([]CheckpointRecord(nil), records...)
	if n := len(l.records); n > 0 {
		l.prev = l.records[n-1].Hash
	}
}

// Append chains and stores one snapshot, returning the finished record.
// delta marks the state as encoded against the previous record; it must
// be false when the log is empty (a chain's first record is a keyframe).
func (l *CheckpointLog) Append(slot, step int, seconds float64, state json.RawMessage, delta bool) CheckpointRecord {
	return l.AppendOwned(slot, step, seconds, append(json.RawMessage(nil), state...), delta)
}

// AppendOwned is Append for a caller that hands over ownership of state:
// the log stores the slice as-is instead of copying it. The caller must
// not reuse or mutate the buffer afterwards.
func (l *CheckpointLog) AppendOwned(slot, step int, seconds float64, state json.RawMessage, delta bool) CheckpointRecord {
	rec := CheckpointRecord{
		V:       CheckpointVersion,
		Slot:    slot,
		Step:    step,
		Seconds: seconds,
		State:   state,
		Delta:   delta,
	}
	l.mu.Lock()
	rec.Prev = l.prev
	rec.Hash = HashCheckpoint(rec)
	l.prev = rec.Hash
	l.records = append(l.records, rec)
	l.mu.Unlock()
	return rec
}

// NextIsDelta reports whether the log's next append should be a delta
// under the keyframe cadence: every record whose chain index is divisible
// by every is a keyframe, everything between is a delta. The cadence is a
// function of chain position alone, so a resumed log (seeded with the
// interrupted run's records) continues the exact sequence an
// uninterrupted run would have produced.
func (l *CheckpointLog) NextIsDelta(every int) bool {
	if every <= 1 {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)%every != 0
}

// Len returns the number of stored records.
func (l *CheckpointLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Records returns a copy of the stored records in chain order.
func (l *CheckpointLog) Records() []CheckpointRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]CheckpointRecord(nil), l.records...)
}

// WriteCheckpointsJSONL writes records one JSON object per line.
func WriteCheckpointsJSONL(w io.Writer, records []CheckpointRecord) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range records {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("obs: write checkpoints: %w", err)
		}
	}
	return bw.Flush()
}

// ReadCheckpoints parses a JSONL stream written by WriteCheckpointsJSONL.
func ReadCheckpoints(r io.Reader) ([]CheckpointRecord, error) {
	var out []CheckpointRecord
	dec := json.NewDecoder(r)
	for {
		var rec CheckpointRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("obs: read checkpoints: %w", err)
		}
		out = append(out, rec)
	}
}

// ValidateCheckpoints checks a checkpoint stream's structural invariants,
// per run label: known schema version, strictly increasing slot index,
// intact prev links and recomputable hashes. Records of different runs may
// interleave arbitrarily (a multi-run capture concatenates sorted runs).
func ValidateCheckpoints(records []CheckpointRecord) error {
	type chainState struct {
		prev     string
		lastSlot int
		started  bool
	}
	chains := make(map[string]*chainState)
	for i, r := range records {
		if r.V < checkpointMinVersion || r.V > CheckpointVersion {
			return fmt.Errorf("obs: checkpoint %d: unknown schema version %d (want %d..%d)", i, r.V, checkpointMinVersion, CheckpointVersion)
		}
		if r.Delta && r.V < 2 {
			return fmt.Errorf("obs: checkpoint %d: delta record under schema version %d (deltas need v2)", i, r.V)
		}
		c := chains[r.Run]
		if c == nil {
			c = &chainState{}
			chains[r.Run] = c
		}
		if r.Delta && !c.started {
			return fmt.Errorf("obs: checkpoint %d: delta record opens run %q chain (first record must be a keyframe)", i, r.Run)
		}
		if c.started && r.Slot <= c.lastSlot {
			return fmt.Errorf("obs: checkpoint %d: slot %d not above previous slot %d", i, r.Slot, c.lastSlot)
		}
		if r.Prev != c.prev {
			return fmt.Errorf("obs: checkpoint %d (slot %d): broken chain: prev %.12s != expected %.12s", i, r.Slot, r.Prev, c.prev)
		}
		if got := HashCheckpoint(r); got != r.Hash {
			return fmt.Errorf("obs: checkpoint %d (slot %d): hash mismatch: stored %.12s, computed %.12s", i, r.Slot, r.Hash, got)
		}
		c.prev = r.Hash
		c.lastSlot = r.Slot
		c.started = true
	}
	return nil
}

// MaterializeAt returns the full simulation state of records[i],
// reconstructing delta records by splicing them onto the nearest preceding
// keyframe of the same run. The scan walks back at most the keyframe
// cadence, so a seek costs O(keyframe distance) records regardless of
// chain length. A keyframe's state is returned as stored (byte-identical);
// a delta's is re-marshaled from the spliced document.
func MaterializeAt(records []CheckpointRecord, i int) (json.RawMessage, error) {
	if i < 0 || i >= len(records) {
		return nil, fmt.Errorf("obs: materialize checkpoint %d of %d", i, len(records))
	}
	if !records[i].Delta {
		return records[i].State, nil
	}
	run := records[i].Run
	// Collect the delta chain back to its keyframe, same-run records only.
	var chain []int
	key := -1
	for j := i; j >= 0; j-- {
		if records[j].Run != run {
			continue
		}
		if !records[j].Delta {
			key = j
			break
		}
		chain = append(chain, j)
	}
	if key < 0 {
		return nil, fmt.Errorf("obs: checkpoint %d (run %q): delta chain has no keyframe", i, run)
	}
	var state map[string]any
	if err := json.Unmarshal(records[key].State, &state); err != nil {
		return nil, fmt.Errorf("obs: checkpoint %d: decode keyframe state: %w", key, err)
	}
	for j := len(chain) - 1; j >= 0; j-- {
		var delta map[string]any
		if err := json.Unmarshal(records[chain[j]].State, &delta); err != nil {
			return nil, fmt.Errorf("obs: checkpoint %d: decode delta state: %w", chain[j], err)
		}
		spliced, err := spliceCheckpointDelta(state, delta)
		if err != nil {
			return nil, fmt.Errorf("obs: checkpoint %d: %w", chain[j], err)
		}
		state = spliced
	}
	out, err := json.Marshal(state)
	if err != nil {
		return nil, fmt.Errorf("obs: checkpoint %d: re-marshal state: %w", i, err)
	}
	return out, nil
}

// Delta-encoding companion suffixes. A key "<key>@base": N marks an
// append-only series: the materialized <key> is the previous state's
// first N elements followed by the delta's <key> value. A key
// "<key>@mergekey": "<field>" marks a keyed collection: the delta's
// <key> array carries only changed elements, identified by <field>, and
// an optional "<key>@drop": [...] lists the identities removed since the
// previous record.
const (
	deltaBaseSuffix  = "@base"
	deltaMergeSuffix = "@mergekey"
	deltaDropSuffix  = "@drop"
)

// isDeltaCompanion reports whether k is a companion key consumed
// alongside its primary key rather than materialized itself.
func isDeltaCompanion(k string) bool {
	return strings.HasSuffix(k, deltaBaseSuffix) ||
		strings.HasSuffix(k, deltaMergeSuffix) ||
		strings.HasSuffix(k, deltaDropSuffix)
}

// spliceCheckpointDelta materializes one delta document against the
// previous materialized state. The encoding is self-describing: a key
// carrying a "<key>@base" companion splices onto the previous array; a
// key carrying "<key>@mergekey" upserts into the previous array by
// element identity (dropping the "<key>@drop" identities first); nested
// objects recurse; every other key replaces the previous value
// wholesale, and keys absent from the delta are dropped.
func spliceCheckpointDelta(prev, delta map[string]any) (map[string]any, error) {
	out := make(map[string]any, len(delta))
	for k, v := range delta {
		if isDeltaCompanion(k) {
			continue // companion, consumed with its primary key
		}
		if mkAny, ok := delta[k+deltaMergeSuffix]; ok {
			merged, err := spliceKeyedMerge(k, prev[k], v, mkAny, delta[k+deltaDropSuffix])
			if err != nil {
				return nil, err
			}
			out[k] = merged
			continue
		}
		if baseAny, ok := delta[k+deltaBaseSuffix]; ok {
			baseF, ok := baseAny.(float64)
			if !ok {
				return nil, fmt.Errorf("splice %q: offset %v is not a number", k, baseAny)
			}
			base := int(baseF)
			var prevArr []any
			if pa, ok := prev[k].([]any); ok {
				prevArr = pa
			}
			if base > len(prevArr) {
				return nil, fmt.Errorf("splice %q: offset %d beyond previous length %d", k, base, len(prevArr))
			}
			suffix, ok := v.([]any)
			if !ok && v != nil {
				return nil, fmt.Errorf("splice %q: delta value is not an array", k)
			}
			merged := make([]any, 0, base+len(suffix))
			merged = append(merged, prevArr[:base]...)
			merged = append(merged, suffix...)
			out[k] = merged
			continue
		}
		if dm, ok := v.(map[string]any); ok {
			pm, _ := prev[k].(map[string]any)
			spliced, err := spliceCheckpointDelta(pm, dm)
			if err != nil {
				return nil, fmt.Errorf("%q.%w", k, err)
			}
			out[k] = spliced
			continue
		}
		out[k] = v
	}
	return out, nil
}

// spliceKeyedMerge materializes a keyed-collection delta: starting from
// the previous array with the dropped identities removed (order
// preserved), each delta element replaces the previous element of the
// same identity in place, or appends if its identity is new. Identity is
// the JSON encoding of the element's merge-key field, so struct-valued
// keys compare correctly.
func spliceKeyedMerge(k string, prevVal, deltaVal, mergeKey, dropVal any) ([]any, error) {
	field, ok := mergeKey.(string)
	if !ok || field == "" {
		return nil, fmt.Errorf("splice %q: merge key %v is not a non-empty string", k, mergeKey)
	}
	ident := func(el any) (string, error) {
		obj, ok := el.(map[string]any)
		if !ok {
			return "", fmt.Errorf("splice %q: element %v is not an object", k, el)
		}
		enc, err := json.Marshal(obj[field])
		if err != nil {
			return "", fmt.Errorf("splice %q: encode merge key: %w", k, err)
		}
		return string(enc), nil
	}
	dropSet := map[string]bool{}
	if dropVal != nil {
		drops, ok := dropVal.([]any)
		if !ok {
			return nil, fmt.Errorf("splice %q: drop list %v is not an array", k, dropVal)
		}
		for _, d := range drops {
			enc, err := json.Marshal(d)
			if err != nil {
				return nil, fmt.Errorf("splice %q: encode drop key: %w", k, err)
			}
			dropSet[string(enc)] = true
		}
	}
	var prevArr []any
	if pa, ok := prevVal.([]any); ok {
		prevArr = pa
	}
	upserts, ok := deltaVal.([]any)
	if !ok && deltaVal != nil {
		return nil, fmt.Errorf("splice %q: delta value is not an array", k)
	}
	merged := make([]any, 0, len(prevArr)+len(upserts))
	index := make(map[string]int, len(prevArr))
	for _, el := range prevArr {
		id, err := ident(el)
		if err != nil {
			return nil, err
		}
		if dropSet[id] {
			continue
		}
		index[id] = len(merged)
		merged = append(merged, el)
	}
	for _, el := range upserts {
		id, err := ident(el)
		if err != nil {
			return nil, err
		}
		if pos, ok := index[id]; ok {
			merged[pos] = el
			continue
		}
		index[id] = len(merged)
		merged = append(merged, el)
	}
	return merged, nil
}
