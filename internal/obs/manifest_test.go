package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestManifestLifecycle walks the full capture lifecycle a killed-and-
// resumed sweep goes through: StartManifest leaves a "running" marker, a
// later process finding it marks "killed", a fresh StartManifest takes
// over, and WriteFiles lands the complete manifest with the run index
// and artifact inventory.
func TestManifestLifecycle(t *testing.T) {
	dir := t.TempDir()

	// Writer starts: status running, no runs yet.
	if err := StartManifest(dir, "all"); err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Status != StatusRunning || m.Label != "all" || len(m.Runs) != 0 {
		t.Fatalf("running manifest = %+v", m)
	}

	// Writer dies; the resume path finds "running" and marks killed.
	if err := SetManifestStatus(dir, StatusKilled); err != nil {
		t.Fatal(err)
	}
	if m, err = ReadManifest(dir); err != nil || m.Status != StatusKilled {
		t.Fatalf("killed transition: %+v, %v", m, err)
	}
	if m.Label != "all" {
		t.Fatalf("SetManifestStatus dropped label: %+v", m)
	}

	// The resume takes over and completes the capture.
	if err := StartManifest(dir, "all"); err != nil {
		t.Fatal(err)
	}
	c := NewCapture()
	c.SetLabel("all")
	c.Contribute(artifactA())
	c.Contribute(artifactB())
	if err := c.WriteFiles(dir); err != nil {
		t.Fatal(err)
	}
	m, err = ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Status != StatusComplete || len(m.Runs) != 2 {
		t.Fatalf("complete manifest = %+v", m)
	}
	if len(m.Artifacts) == 0 {
		t.Fatal("complete manifest carries no artifact inventory")
	}
	for _, a := range m.Artifacts {
		if a.Name == ManifestName {
			t.Fatal("manifest inventories itself")
		}
		fi, err := os.Stat(filepath.Join(dir, a.Name))
		if err != nil || fi.Size() != a.Bytes {
			t.Fatalf("inventory %s: %v, size %d vs %d", a.Name, err, fi.Size(), a.Bytes)
		}
	}
}

// TestManifestRunRows pins the per-run index row content for a known
// artifact: parsed key fields, stable ID, counters and byte share.
func TestManifestRunRows(t *testing.T) {
	c := NewCapture()
	c.Contribute(artifactA())
	m := c.BuildManifest()
	if len(m.Runs) != 1 {
		t.Fatalf("%d runs", len(m.Runs))
	}
	rm := m.Runs[0]
	if rm.Scheme != "HEB-D" || rm.Workload != "PR" || rm.DurationSeconds != 3600 || rm.Seed != 1 {
		t.Errorf("parsed key fields: %+v", rm)
	}
	if rm.Status != StatusComplete || rm.Bytes <= 0 {
		t.Errorf("row status/bytes: %+v", rm)
	}
	if rm.Summary.Events != 2 || rm.Summary.Decisions != 1 || rm.Summary.Steps != 3600 {
		t.Errorf("summary counters: %+v", rm.Summary)
	}
	if rm.Summary.RelaySwitches != 4 {
		t.Errorf("relay switches = %d, want 4", rm.Summary.RelaySwitches)
	}
	if rm.ID == "" || len(rm.ID) != 12 {
		t.Errorf("run ID %q not 12 hex chars", rm.ID)
	}
	// Same artifact → same ID, every time.
	c2 := NewCapture()
	c2.Contribute(artifactA())
	if id2 := c2.BuildManifest().Runs[0].ID; id2 != rm.ID {
		t.Errorf("run ID unstable: %s vs %s", rm.ID, id2)
	}
}

// TestManifestDeterministicBytes checks the serialized manifest is
// byte-identical regardless of contribution order (the registry and the
// workers-determinism guarantee both lean on this).
func TestManifestDeterministicBytes(t *testing.T) {
	render := func(contribute func(*Capture)) []byte {
		c := NewCapture()
		contribute(c)
		raw, err := json.MarshalIndent(c.BuildManifest(), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	ab := render(func(c *Capture) { c.Contribute(artifactA()); c.Contribute(artifactB()) })
	ba := render(func(c *Capture) { c.Contribute(artifactB()); c.Contribute(artifactA()) })
	if string(ab) != string(ba) {
		t.Error("manifest bytes depend on contribution order")
	}
}

// TestReadManifestRejectsNewerVersion pins the forward-compat contract.
func TestReadManifestRejectsNewerVersion(t *testing.T) {
	dir := t.TempDir()
	if err := WriteManifest(dir, Manifest{V: ManifestVersion + 1, Status: StatusComplete}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err == nil {
		t.Fatal("newer-version manifest accepted")
	}
}

// TestWriteManifestLeavesNoTempFiles checks the atomic-install path
// cleans up after itself.
func TestWriteManifestLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := StartManifest(dir, ""); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != ManifestName {
		t.Fatalf("dir holds %v, want only %s", ents, ManifestName)
	}
}
