package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("heb_test_total", "test counter")
	c.Inc()
	c.Add(2.5)
	c.Add(-4) // ignored: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter value = %g, want 3.5", got)
	}
	if again := r.Counter("heb_test_total", "test counter"); again != c {
		t.Fatal("Counter did not return the existing instrument")
	}

	g := r.Gauge("heb_test_watts", "test gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge value = %g, want 7", got)
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("heb_relay_total", "", Label{"position", "battery"})
	b := r.Counter("heb_relay_total", "", Label{"position", "supercap"})
	if a == b {
		t.Fatal("different label values returned the same series")
	}
	a.Add(2)
	b.Add(5)
	if v, ok := r.Get("heb_relay_total", Label{"position", "battery"}); !ok || v != 2 {
		t.Fatalf("Get(battery) = %g,%v want 2,true", v, ok)
	}
	if v, ok := r.Get("heb_relay_total", Label{"position", "supercap"}); !ok || v != 5 {
		t.Fatalf("Get(supercap) = %g,%v want 5,true", v, ok)
	}
	// Label order must not matter.
	c1 := r.Counter("heb_multi_total", "", Label{"a", "1"}, Label{"b", "2"})
	c2 := r.Counter("heb_multi_total", "", Label{"b", "2"}, Label{"a", "1"})
	if c1 != c2 {
		t.Fatal("label order changed series identity")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("heb_x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("heb_x_total", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("heb_lat_seconds", "", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 10} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 16 {
		t.Fatalf("sum = %g, want 16", h.Sum())
	}
	// Cumulative buckets: le=1 → 2 (0.5, 1), le=2 → 3, le=5 → 4, +Inf → 5.
	want := map[string]float64{
		`{le="1"}`:    2,
		`{le="2"}`:    3,
		`{le="5"}`:    4,
		`{le="+Inf"}`: 5,
	}
	for _, s := range r.Snapshot() {
		if s.Name != "heb_lat_seconds_bucket" {
			continue
		}
		if want[s.Labels] != s.Value {
			t.Errorf("bucket %s = %g, want %g", s.Labels, s.Value, want[s.Labels])
		}
		delete(want, s.Labels)
	}
	if len(want) != 0 {
		t.Fatalf("missing buckets: %v", want)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0, 10, 3)
	if lin[0] != 0 || lin[1] != 10 || lin[2] != 20 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	exp := ExponentialBuckets(1, 2, 4)
	if exp[3] != 8 {
		t.Fatalf("ExponentialBuckets = %v", exp)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("heb_b_total", "second", Label{"k", "2"}).Add(2)
		r.Counter("heb_b_total", "second", Label{"k", "1"}).Add(1)
		r.Gauge("heb_a_watts", "first").Set(42)
		r.Histogram("heb_c_seconds", "third", []float64{1}).Observe(0.5)
		return r
	}
	var x, y bytes.Buffer
	if err := build().WritePrometheus(&x); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&y); err != nil {
		t.Fatal(err)
	}
	if x.String() != y.String() {
		t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", x.String(), y.String())
	}
	out := x.String()
	for _, want := range []string{
		"# TYPE heb_a_watts gauge",
		"# TYPE heb_b_total counter",
		"# TYPE heb_c_seconds histogram",
		`heb_b_total{k="1"} 1`,
		`heb_c_seconds_bucket{le="+Inf"} 1`,
		"heb_c_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families must come out name-sorted.
	if strings.Index(out, "heb_a_watts") > strings.Index(out, "heb_b_total") {
		t.Fatal("families not sorted by name")
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("heb_hits_total", "hits").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "heb_hits_total 1") {
		t.Fatalf("body missing sample:\n%s", rec.Body.String())
	}
}

func TestConcurrentInstrumentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("heb_par_total", "")
			h := r.Histogram("heb_par_seconds", "", []float64{1})
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if v, _ := r.Get("heb_par_total"); v != 8000 {
		t.Fatalf("counter = %g, want 8000", v)
	}
	if v, _ := r.Get("heb_par_seconds_count"); v != 8000 {
		t.Fatalf("histogram count = %g, want 8000", v)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("heb_esc_total", "", Label{"path", `a"b\c` + "\n"}).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `path="a\"b\\c\n"`) {
		t.Fatalf("label not escaped:\n%s", buf.String())
	}
}
