package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"heb/internal/obs/alerts"
)

// RunArtifact is one run's contribution to a capture: its events and
// decision trace plus the deterministic scalar counters that end up in
// metrics.prom. Key must identify the run's full configuration (scheme,
// workload, duration, seed, ...) — artifacts are sorted by Key before
// writing, which is what makes the output independent of worker
// scheduling.
type RunArtifact struct {
	Key           string
	Events        []Event
	EventsDropped int
	Decisions     []DecisionRecord
	Steps         int64
	MismatchSteps int64
	Slots         int64
	// RelaySwitches counts relay movements by destination position name
	// (utility, battery, supercap, off).
	RelaySwitches map[string]int64
	PATLookups    int64
	PATMisses     int64
	// Probes holds the run's per-device probe samples (probes.jsonl);
	// ProbesDropped counts samples the per-device ring overwrote.
	Probes        []ProbeSample
	ProbesDropped int64
	// Audit is the run's energy-conservation verdict (audits.jsonl), nil
	// when the run was not audited.
	Audit *AuditReport
	// Checkpoints holds the run's hash-chained flight-recorder records
	// (checkpoints.jsonl), empty when checkpointing was off.
	Checkpoints []CheckpointRecord
	// AlertEvents holds the run's fired SLO alerts (alerts.jsonl), empty
	// when the rule engine was off or quiet.
	AlertEvents []alerts.Event
	// Alerts is the run's alert report and health verdict, nil when the
	// rule engine was off.
	Alerts *alerts.Report
	// Metrics carries the run's headline result scalars (energy
	// efficiency, downtime, battery lifetime, ...) for the manifest's
	// summary and cross-run comparison.
	Metrics map[string]float64
}

// Capture aggregates the per-run observability artifacts of a sweep and
// writes them as three files: events.jsonl, decisions.jsonl and
// metrics.prom. Runs may Contribute concurrently and in any order; the
// written files are byte-identical for any worker count because output is
// sorted by (Key, content) and contains only simulation-deterministic
// values — never wall-clock or scheduling state.
type Capture struct {
	mu       sync.Mutex
	eventCap int
	label    string
	runs     []RunArtifact
}

// DefaultEventCap bounds the events kept per run so a full-suite sweep
// cannot grow without bound; overflow is counted, not stored.
const DefaultEventCap = 5000

// NewCapture builds an empty capture with the default per-run event cap.
func NewCapture() *Capture { return &Capture{eventCap: DefaultEventCap} }

// SetEventCap overrides the per-run event cap (0 = unbounded).
func (c *Capture) SetEventCap(n int) {
	c.mu.Lock()
	c.eventCap = n
	c.mu.Unlock()
}

// EventCap returns the per-run event cap each contributing run should use.
func (c *Capture) EventCap() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.eventCap
}

// SetLabel names the producing sweep/experiment; the label lands in the
// manifest so the registry can show what a capture directory holds.
func (c *Capture) SetLabel(label string) {
	c.mu.Lock()
	c.label = label
	c.mu.Unlock()
}

// Label returns the capture's label.
func (c *Capture) Label() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.label
}

// Contribute adds one run's artifact. Events and decisions are stamped
// with the run key so the merged files remain attributable.
func (c *Capture) Contribute(a RunArtifact) {
	for i := range a.Events {
		if a.Events[i].Run == "" {
			a.Events[i].Run = a.Key
		}
	}
	for i := range a.Decisions {
		if a.Decisions[i].Run == "" {
			a.Decisions[i].Run = a.Key
		}
	}
	for i := range a.Probes {
		if a.Probes[i].Run == "" {
			a.Probes[i].Run = a.Key
		}
	}
	if a.Audit != nil && a.Audit.Run == "" {
		a.Audit.Run = a.Key
	}
	for i := range a.Checkpoints {
		if a.Checkpoints[i].Run == "" {
			a.Checkpoints[i].Run = a.Key
		}
	}
	for i := range a.AlertEvents {
		if a.AlertEvents[i].Run == "" {
			a.AlertEvents[i].Run = a.Key
		}
	}
	if a.Alerts != nil && a.Alerts.Run == "" {
		a.Alerts.Run = a.Key
	}
	c.mu.Lock()
	c.runs = append(c.runs, a)
	c.mu.Unlock()
}

// Runs returns the contributed artifacts sorted into output order.
func (c *Capture) Runs() []RunArtifact {
	c.mu.Lock()
	out := append([]RunArtifact(nil), c.runs...)
	c.mu.Unlock()
	// Precompute fingerprints: key collisions are legitimate (a suite may
	// run the same cell in several experiments, and a key cannot encode
	// every config knob), so ties must order by full content to keep the
	// written files scheduling-independent.
	fps := make([]string, len(out))
	idx := make([]int, len(out))
	for i := range out {
		fps[i] = artifactFingerprint(out[i])
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		i, j := idx[a], idx[b]
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return fps[i] < fps[j]
	})
	sorted := make([]RunArtifact, len(out))
	for k, i := range idx {
		sorted[k] = out[i]
	}
	return sorted
}

// artifactFingerprint summarizes an artifact's full simulated content —
// counters, every event, every decision record — so that artifacts
// sharing a Key still sort deterministically.
func artifactFingerprint(a RunArtifact) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d|%d|%d|%d|%d", a.Steps, a.MismatchSteps, a.Slots, len(a.Events), len(a.Decisions))
	for _, e := range a.Events {
		fmt.Fprintf(&sb, "|%g:%d:%d:%s:%s:%g", e.Seconds, e.Kind, e.Server, e.From, e.To, e.Watts)
	}
	for _, d := range a.Decisions {
		fmt.Fprintf(&sb, "|%d:%s:%g:%v:%g:%g:%g:%g:%d",
			d.Slot, d.Mode, d.Ratio, d.SmallPeak,
			d.PredictedPeakW, d.ActualPeakW, d.SCFrac, d.BAFrac, d.PATLookups)
	}
	fmt.Fprintf(&sb, "|probes=%d,%d", len(a.Probes), a.ProbesDropped)
	for _, s := range a.Probes {
		fmt.Fprintf(&sb, "|%g:%s:%g:%g:%g:%g:%g:%g", s.Seconds, s.Device, s.SoC, s.VoltageV, s.PowerW, s.AvailAh, s.BoundAh, s.ThroughputAh)
	}
	if a.Audit != nil {
		fmt.Fprintf(&sb, "|audit=%s:%d:%g:%g:%d:%v", a.Audit.Mode, a.Audit.Steps,
			a.Audit.DriftWh, a.Audit.RelDrift, a.Audit.Violations, a.Audit.Passed)
	}
	fmt.Fprintf(&sb, "|ckpts=%d", len(a.Checkpoints))
	for _, r := range a.Checkpoints {
		// The chain hash already covers slot, step, time and state.
		fmt.Fprintf(&sb, "|%s", r.Hash)
	}
	if a.Alerts != nil {
		fmt.Fprintf(&sb, "|alerts=%s:%d:%d:%d:%s", a.Alerts.Mode,
			a.Alerts.Events, a.Alerts.Warnings, a.Alerts.Criticals, a.Alerts.Health)
	}
	for _, e := range a.AlertEvents {
		fmt.Fprintf(&sb, "|%g:%s:%s:%s:%g:%g", e.Seconds, e.Kind, e.Severity, e.Device, e.Value, e.Limit)
	}
	for _, k := range sortedMetricKeys(a.Metrics) {
		fmt.Fprintf(&sb, "|%s=%g", k, a.Metrics[k])
	}
	return sb.String()
}

func sortedMetricKeys(m map[string]float64) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Registry renders the capture's deterministic counters into a fresh
// metrics registry using the heb_<subsystem>_<name>_<unit> naming scheme.
func (c *Capture) Registry() *Registry {
	reg := NewRegistry()
	runs := c.Runs()
	reg.Counter("heb_capture_runs_total", "Runs contributing to this capture.").Add(float64(len(runs)))
	for _, a := range runs {
		reg.Counter("heb_engine_steps_total", "Simulation steps executed.").Add(float64(a.Steps))
		reg.Counter("heb_engine_mismatch_steps_total", "Steps with demand above supply.").Add(float64(a.MismatchSteps))
		reg.Counter("heb_control_slots_total", "hControl slots planned.").Add(float64(a.Slots))
		reg.Counter("heb_pat_lookups_total", "PAT table lookups.").Add(float64(a.PATLookups))
		reg.Counter("heb_pat_misses_total", "PAT lookups served by similarity fallback.").Add(float64(a.PATMisses))
		reg.Counter("heb_obs_events_dropped_total", "Events rejected by the per-run cap.").Add(float64(a.EventsDropped))
		for pos, n := range a.RelaySwitches {
			reg.Counter("heb_power_relay_switches_total", "Relay movements by destination position.",
				Label{Name: "position", Value: pos}).Add(float64(n))
		}
		for kind, n := range countKinds(a.Events) {
			reg.Counter("heb_obs_events_total", "Events recorded by kind.",
				Label{Name: "kind", Value: kind.String()}).Add(float64(n))
		}
		reg.Counter("heb_obs_probes_total", "Probe samples retained.").Add(float64(len(a.Probes)))
		reg.Counter("heb_obs_probes_dropped_total", "Probe samples overwritten by the per-device ring.").Add(float64(a.ProbesDropped))
		for _, s := range a.Probes {
			reg.Histogram("heb_probe_soc", "Probed device state of charge.",
				LinearBuckets(0, 0.1, 10)).Observe(s.SoC)
			reg.Histogram("heb_probe_power_watts", "Probed mean net terminal power (positive discharging).",
				LinearBuckets(-200, 50, 10)).Observe(s.PowerW)
		}
		if a.Audit != nil {
			reg.Counter("heb_audit_runs_total", "Audited runs by verdict.",
				Label{Name: "passed", Value: fmt.Sprintf("%v", a.Audit.Passed)}).Add(1)
			reg.Counter("heb_audit_violations_total", "Audit violations flagged.").Add(float64(a.Audit.Violations))
		}
		if a.Alerts != nil {
			reg.Counter("heb_alert_runs_total", "Alerted runs by health verdict.",
				Label{Name: "health", Value: a.Alerts.Health}).Add(1)
			reg.Counter("heb_alert_events_total", "Fired SLO alerts by severity.",
				Label{Name: "severity", Value: alerts.SeverityWarn.String()}).Add(float64(a.Alerts.Warnings))
			reg.Counter("heb_alert_events_total", "Fired SLO alerts by severity.",
				Label{Name: "severity", Value: alerts.SeverityCritical.String()}).Add(float64(a.Alerts.Criticals))
		}
	}
	return reg
}

func countKinds(events []Event) map[EventKind]int {
	out := make(map[EventKind]int)
	for _, e := range events {
		out[e.Kind]++
	}
	return out
}

// WriteFiles writes events.jsonl, decisions.jsonl and metrics.prom into
// dir, creating it if needed; probes.jsonl, audits.jsonl,
// checkpoints.jsonl and alerts.jsonl follow whenever any run contributed
// probe samples, an audit report, flight-recorder checkpoints or fired
// alerts. A manifest.json indexing
// the runs and inventorying the written files (sizes + SHA-256) is
// installed atomically last, with status complete. Output depends only on
// the contributed artifacts, never on contribution order.
func (c *Capture) WriteFiles(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("obs: capture dir: %w", err)
	}
	runs := c.Runs()

	var events []Event
	var decisions []DecisionRecord
	var probes []ProbeSample
	var audits []AuditReport
	var checkpoints []CheckpointRecord
	var alertEvents []alerts.Event
	for _, a := range runs {
		events = append(events, a.Events...)
		decisions = append(decisions, a.Decisions...)
		probes = append(probes, a.Probes...)
		if a.Audit != nil {
			audits = append(audits, *a.Audit)
		}
		checkpoints = append(checkpoints, a.Checkpoints...)
		alertEvents = append(alertEvents, a.AlertEvents...)
	}

	if err := writeTo(filepath.Join(dir, "events.jsonl"), func(f *os.File) error {
		return WriteEventsJSONL(f, events)
	}); err != nil {
		return err
	}
	if err := writeTo(filepath.Join(dir, "decisions.jsonl"), func(f *os.File) error {
		return WriteDecisionsJSONL(f, decisions)
	}); err != nil {
		return err
	}
	if len(probes) > 0 {
		if err := writeTo(filepath.Join(dir, "probes.jsonl"), func(f *os.File) error {
			return WriteProbesJSONL(f, probes)
		}); err != nil {
			return err
		}
	}
	if len(audits) > 0 {
		if err := writeTo(filepath.Join(dir, "audits.jsonl"), func(f *os.File) error {
			return WriteAuditsJSONL(f, audits)
		}); err != nil {
			return err
		}
	}
	if len(checkpoints) > 0 {
		if err := writeTo(filepath.Join(dir, "checkpoints.jsonl"), func(f *os.File) error {
			return WriteCheckpointsJSONL(f, checkpoints)
		}); err != nil {
			return err
		}
	}
	if len(alertEvents) > 0 {
		if err := writeTo(filepath.Join(dir, "alerts.jsonl"), func(f *os.File) error {
			return alerts.WriteEventsJSONL(f, alertEvents)
		}); err != nil {
			return err
		}
	}
	if err := writeTo(filepath.Join(dir, "metrics.prom"), func(f *os.File) error {
		return c.Registry().WritePrometheus(f)
	}); err != nil {
		return err
	}

	manifest := c.BuildManifest()
	inv, err := inventory(dir, ArtifactNames)
	if err != nil {
		return err
	}
	manifest.Artifacts = inv
	return WriteManifest(dir, manifest)
}

// ArtifactNames lists every capture-owned artifact file a manifest may
// inventory, in inventory order.
var ArtifactNames = []string{
	"events.jsonl", "decisions.jsonl", "metrics.prom",
	"probes.jsonl", "audits.jsonl", "checkpoints.jsonl", "alerts.jsonl",
}

func writeTo(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: close %s: %w", path, err)
	}
	return nil
}
