package prof

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline is the committed BENCH_prof.json schema: the top flat frames
// of a reference profile, stored as flat-percentage shares so the gate is
// machine-speed independent.
type Baseline struct {
	V int `json:"v"`
	// Sample is the value column the baseline was built from,
	// e.g. "alloc_space/bytes".
	Sample string `json:"sample"`
	// Source describes how to regenerate (the bench.sh -profile command).
	Source string          `json:"source,omitempty"`
	Frames []BaselineFrame `json:"frames"`
}

// BaselineFrame is one reference frame share.
type BaselineFrame struct {
	Name    string  `json:"name"`
	FlatPct float64 `json:"flat_pct"`
}

// CheckOpts tunes the regression gate.
type CheckOpts struct {
	// NewPct fails any frame absent from the baseline whose flat share
	// meets or exceeds this percentage.
	NewPct float64
	// GrowthFactor fails a known frame whose share grew past
	// baseline*factor (only when the grown share is at least NoisePct,
	// so 0.01%→0.03% jitter can't trip the gate).
	GrowthFactor float64
	// NoisePct is the minimum current share for a growth violation.
	NoisePct float64
}

// DefaultCheckOpts matches the CI gate: new frames ≥3% flat fail,
// existing frames growing beyond 1.5× fail once they matter (≥1%).
func DefaultCheckOpts() CheckOpts {
	return CheckOpts{NewPct: 3.0, GrowthFactor: 1.5, NoisePct: 1.0}
}

// Violation is one gate failure.
type Violation struct {
	Frame string
	// Kind is "new-frame" or "growth".
	Kind            string
	BasePct, CurPct float64
	Detail          string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s (%s)", v.Kind, ShortName(v.Frame), v.Detail)
}

// NewBaseline snapshots a rollup's top-n frames into a committable
// baseline.
func NewBaseline(r *Rollup, n int, source string) *Baseline {
	b := &Baseline{V: 1, Sample: r.Sample.String(), Source: source}
	for _, f := range r.Top(n) {
		pct := r.FlatPct(f)
		if pct <= 0 {
			continue
		}
		b.Frames = append(b.Frames, BaselineFrame{Name: f.Name, FlatPct: round2(pct)})
	}
	return b
}

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }

// Check gates a current rollup against the baseline. Frames in the
// baseline that shrank or vanished never fail — improvements are free.
func Check(b *Baseline, cur *Rollup, opts CheckOpts) []Violation {
	if b.Sample != "" && cur.Sample.String() != b.Sample {
		return []Violation{{
			Kind:   "sample-mismatch",
			Detail: fmt.Sprintf("baseline is %s, profile is %s", b.Sample, cur.Sample),
		}}
	}
	base := map[string]float64{}
	for _, f := range b.Frames {
		base[f.Name] = f.FlatPct
	}
	var out []Violation
	for _, f := range cur.Top(0) {
		pct := cur.FlatPct(f)
		bp, known := base[f.Name]
		switch {
		case !known && pct >= opts.NewPct:
			out = append(out, Violation{
				Frame: f.Name, Kind: "new-frame", CurPct: pct,
				Detail: fmt.Sprintf("%.2f%% flat, not in baseline (limit %.2f%%)", pct, opts.NewPct),
			})
		case known && pct >= opts.NoisePct && bp > 0 && pct > bp*opts.GrowthFactor:
			out = append(out, Violation{
				Frame: f.Name, Kind: "growth", BasePct: bp, CurPct: pct,
				Detail: fmt.Sprintf("%.2f%% → %.2f%% flat (limit %.1f×)", bp, pct, opts.GrowthFactor),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CurPct > out[j].CurPct })
	return out
}

// WriteBaseline writes the baseline as stable, diff-friendly JSON.
func WriteBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBaseline loads and validates a BENCH_prof.json.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Frames) == 0 {
		return nil, fmt.Errorf("%s: baseline has no frames", path)
	}
	return &b, nil
}

// IsBaselineFile sniffs whether a JSON file is a profile baseline (has a
// "frames" array) as opposed to a bench-timings file; hebwatch bench uses
// this to route to the right comparator.
func IsBaselineFile(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	var probe struct {
		Frames []json.RawMessage `json:"frames"`
	}
	return json.Unmarshal(data, &probe) == nil && probe.Frames != nil
}
