// Package prof is the capture-integrated profiling layer: it labels every
// sweep cell with pprof labels (scheme, workload, seed, phase) so CPU
// samples attribute to cells, collects opt-in per-run pprof protos into a
// capture directory, and decodes/rolls up those protos for hebprof and
// obscheck without any third-party pprof dependency.
//
// Profiles are wall-clock artifacts: like execution traces they are
// explicitly non-deterministic and live outside the byte-identity
// contract that events/decisions/metrics/manifest obey. The manifest
// records them in a separate Profiles inventory section for the same
// reason.
package prof

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Dir is the subdirectory of a capture directory that holds profiles.
const Dir = "profiles"

// Kinds in collection order. CPU must start first (it profiles the whole
// window); the rest are snapshots written at Stop.
var Kinds = []string{"cpu", "heap", "allocs", "mutex", "block"}

// ParseKinds validates a comma-separated -profile flag value. "all"
// expands to every kind; duplicates collapse; order is normalised to
// Kinds order so the artifact set is stable.
func ParseKinds(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("prof: empty profile kind list")
	}
	want := map[string]bool{}
	for _, k := range strings.Split(s, ",") {
		k = strings.TrimSpace(k)
		if k == "" {
			continue
		}
		if k == "all" {
			for _, all := range Kinds {
				want[all] = true
			}
			continue
		}
		known := false
		for _, all := range Kinds {
			if k == all {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("prof: unknown profile kind %q (valid: %s, all)", k, strings.Join(Kinds, ", "))
		}
		want[k] = true
	}
	var out []string
	for _, k := range Kinds {
		if want[k] {
			out = append(out, k)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("prof: empty profile kind list")
	}
	return out, nil
}

// FileName maps a kind to its on-disk artifact name inside Dir.
func FileName(kind string) string { return kind + ".pb.gz" }

// KindFromFile inverts FileName; ok is false for foreign names.
func KindFromFile(name string) (string, bool) {
	kind, found := strings.CutSuffix(name, ".pb.gz")
	if !found {
		return "", false
	}
	for _, k := range Kinds {
		if kind == k {
			return k, true
		}
	}
	return "", false
}

// active is the process-wide profiling switch. Prototype.Run consults it
// on the hot path with a single atomic load, so disabled runs pay nothing
// measurable (proven by BenchmarkEngineProfDisabled == BenchmarkEngineStep
// allocs/op).
var active atomic.Bool

// Active reports whether a Collector is currently running.
func Active() bool { return active.Load() }

// Collector captures the requested profile kinds for one process-wide
// window (Start..Stop) and writes them under dir/profiles/. It is not
// safe for concurrent Start/Stop, matching its single-owner use in
// hebsim's main.
type Collector struct {
	dir     string
	kinds   []string
	cpuFile *os.File
	// prevMutexFrac/prevBlockRate restore the runtime's sampling knobs on
	// Stop so profiling a run doesn't leak state into later benchmarks.
	prevMutexFrac int
	running       bool
}

// NewCollector prepares a collector that writes kinds into
// captureDir/profiles.
func NewCollector(captureDir string, kinds []string) *Collector {
	return &Collector{dir: filepath.Join(captureDir, Dir), kinds: kinds}
}

func (c *Collector) has(kind string) bool {
	for _, k := range c.kinds {
		if k == kind {
			return true
		}
	}
	return false
}

// Start begins the profiling window: creates the profiles directory,
// starts the CPU profile if requested, arms mutex/block sampling, and
// flips the global Active flag so sweep cells begin labeling.
func (c *Collector) Start() error {
	if c.running {
		return fmt.Errorf("prof: collector already running")
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	if c.has("cpu") {
		f, err := os.Create(filepath.Join(c.dir, FileName("cpu")))
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("prof: start cpu profile: %w", err)
		}
		c.cpuFile = f
	}
	if c.has("mutex") {
		c.prevMutexFrac = runtime.SetMutexProfileFraction(5)
	}
	if c.has("block") {
		runtime.SetBlockProfileRate(10_000) // sample blocking events ≥10µs-ish
	}
	c.running = true
	active.Store(true)
	return nil
}

// Stop ends the window and writes the snapshot profiles. It is called
// right after the simulation finishes and before artifact files are
// written, so capture-file IO never pollutes the profiles.
func (c *Collector) Stop() error {
	if !c.running {
		return nil
	}
	c.running = false
	active.Store(false)
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(c.cpuFile.Close())
		c.cpuFile = nil
	}
	snapshot := func(kind, lookup string) {
		if !c.has(kind) {
			return
		}
		f, err := os.Create(filepath.Join(c.dir, FileName(kind)))
		if err != nil {
			keep(err)
			return
		}
		p := pprof.Lookup(lookup)
		if p == nil {
			keep(fmt.Errorf("prof: no %s profile in runtime", lookup))
		} else {
			keep(p.WriteTo(f, 0))
		}
		keep(f.Close())
	}
	if c.has("heap") || c.has("allocs") {
		runtime.GC() // settle live-heap accounting before the snapshots
	}
	snapshot("heap", "heap")
	snapshot("allocs", "allocs")
	snapshot("mutex", "mutex")
	snapshot("block", "block")
	if c.has("mutex") {
		runtime.SetMutexProfileFraction(c.prevMutexFrac)
	}
	if c.has("block") {
		runtime.SetBlockProfileRate(0)
	}
	return firstErr
}

// Files lists the artifact names (relative to the capture dir) this
// collector writes, in Kinds order.
func (c *Collector) Files() []string {
	var out []string
	for _, k := range c.kinds {
		out = append(out, filepath.Join(Dir, FileName(k)))
	}
	return out
}

// Cell label keys attached to every profiled sweep cell.
const (
	LabelScheme   = "scheme"
	LabelWorkload = "workload"
	LabelSeed     = "seed"
	LabelPhase    = "phase"
)

// Run phases, set via SetPhase as a cell moves through its lifecycle.
const (
	PhaseSetup  = "setup"  // pool/scheme/controller construction
	PhaseSteps  = "steps"  // the engine hot loop
	PhasePlan   = "plan"   // slot planning inside the engine
	PhaseFinish = "finish" // result assembly and capture contribution
)

// DoCell runs fn with the cell's pprof labels attached to the goroutine,
// starting in PhaseSetup. The labeled context must be threaded into any
// nested SetPhase calls; pprof.Do restores the caller's labels on return.
func DoCell(scheme, workload string, seed int64, fn func(ctx context.Context)) {
	pprof.Do(context.Background(), pprof.Labels(
		LabelScheme, scheme,
		LabelWorkload, workload,
		LabelSeed, strconv.FormatInt(seed, 10),
		LabelPhase, PhaseSetup,
	), fn)
}

// SetPhase switches the goroutine's phase label in place, keeping the
// cell identity labels. ctx must be the context DoCell passed to fn; a
// nil ctx (profiling disabled) is a no-op.
func SetPhase(ctx context.Context, phase string) {
	if ctx == nil {
		return
	}
	ctx = pprof.WithLabels(ctx, pprof.Labels(LabelPhase, phase))
	pprof.SetGoroutineLabels(ctx)
}

// CellLabelKeys is the label set obscheck expects on labeled CPU samples.
var CellLabelKeys = []string{LabelScheme, LabelWorkload, LabelSeed, LabelPhase}

// LabeledShare reports the fraction [0,1] of a profile's headline value
// carried by samples that have all cell label keys, plus the distinct
// label-value combinations seen. Heap/allocs profiles legitimately score
// 0 — the runtime only attaches goroutine labels to CPU samples.
func LabeledShare(p *Profile) (share float64, combos int) {
	idx, err := p.SampleTypeIndex("")
	if err != nil {
		return 0, 0
	}
	var total, labeled int64
	seen := map[string]bool{}
	for _, s := range p.Samples {
		if idx >= len(s.Values) {
			continue
		}
		v := s.Values[idx]
		total += v
		ok := true
		var key []string
		for _, k := range CellLabelKeys {
			val, have := s.Labels[k]
			if !have {
				ok = false
				break
			}
			key = append(key, k+"="+val)
		}
		if ok {
			labeled += v
			sort.Strings(key)
			seen[strings.Join(key, ",")] = true
		}
	}
	if total == 0 {
		return 0, 0
	}
	return float64(labeled) / float64(total), len(seen)
}
