package prof

import (
	"os"
	"path/filepath"
	"testing"
)

// synthetic builds an in-memory Profile with the given stacks (leaf
// first) and values, one sample type.
func synthetic(sample ValueType, stacks [][]string, values []int64, labels []map[string]string) *Profile {
	p := &Profile{
		SampleTypes: []ValueType{sample},
		functions:   map[uint64]string{},
		locations:   map[uint64][]uint64{},
	}
	fid := map[string]uint64{}
	nextF, nextL := uint64(1), uint64(1)
	for i, stack := range stacks {
		var locs []uint64
		for _, fn := range stack {
			id, ok := fid[fn]
			if !ok {
				id = nextF
				nextF++
				fid[fn] = id
				p.functions[id] = fn
			}
			p.locations[nextL] = []uint64{id}
			locs = append(locs, nextL)
			nextL++
		}
		s := Sample{LocationIDs: locs, Values: []int64{values[i]}}
		if labels != nil {
			s.Labels = labels[i]
		}
		p.Samples = append(p.Samples, s)
	}
	return p
}

var allocSpace = ValueType{Type: "alloc_space", Unit: "bytes"}

func TestRollupFlatCum(t *testing.T) {
	p := synthetic(allocSpace,
		[][]string{
			{"leafA", "mid", "root"},
			{"leafB", "mid", "root"},
			{"leafA", "leafA", "root"}, // recursion: cum counts once
		},
		[]int64{60, 30, 10}, nil)
	r, err := NewRollup([]*Profile{p}, "alloc_space", "")
	if err != nil {
		t.Fatal(err)
	}
	if r.Total != 100 {
		t.Fatalf("total = %d", r.Total)
	}
	checks := []struct {
		name      string
		flat, cum int64
	}{
		{"leafA", 70, 70},
		{"leafB", 30, 30},
		{"mid", 0, 90},
		{"root", 0, 100},
	}
	for _, c := range checks {
		f := r.Frames[c.name]
		if f == nil || f.Flat != c.flat || f.Cum != c.cum {
			t.Errorf("%s: got %+v, want flat=%d cum=%d", c.name, f, c.flat, c.cum)
		}
	}
	top := r.Top(2)
	if len(top) != 2 || top[0].Name != "leafA" || top[1].Name != "leafB" {
		t.Fatalf("top = %+v", top)
	}
	if pct := r.FlatPct(top[0]); pct != 70 {
		t.Fatalf("leafA pct = %v", pct)
	}
}

func TestRollupGroupByLabel(t *testing.T) {
	p := synthetic(allocSpace,
		[][]string{{"a"}, {"b"}, {"c"}},
		[]int64{50, 30, 20},
		[]map[string]string{
			{"phase": "steps"},
			{"phase": "plan"},
			nil,
		})
	r, err := NewRollup([]*Profile{p}, "", "phase")
	if err != nil {
		t.Fatal(err)
	}
	if r.ByLabel["steps"] != 50 || r.ByLabel["plan"] != 30 || r.ByLabel["(none)"] != 20 {
		t.Fatalf("ByLabel = %v", r.ByLabel)
	}
}

func TestRollupMergeAndMismatch(t *testing.T) {
	p1 := synthetic(allocSpace, [][]string{{"a"}}, []int64{10}, nil)
	p2 := synthetic(allocSpace, [][]string{{"a"}}, []int64{5}, nil)
	r, err := NewRollup([]*Profile{p1, p2}, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if r.Frames["a"].Flat != 15 {
		t.Fatalf("merged flat = %d", r.Frames["a"].Flat)
	}
	p3 := synthetic(ValueType{Type: "cpu", Unit: "nanoseconds"}, [][]string{{"a"}}, []int64{5}, nil)
	if _, err := NewRollup([]*Profile{p1, p3}, "", ""); err == nil {
		t.Fatal("mixed sample types should error")
	}
}

func TestDiff(t *testing.T) {
	base, _ := NewRollup([]*Profile{synthetic(allocSpace,
		[][]string{{"hot"}, {"steady"}}, []int64{80, 20}, nil)}, "", "")
	cur, _ := NewRollup([]*Profile{synthetic(allocSpace,
		[][]string{{"hot"}, {"steady"}, {"newcomer"}}, []int64{40, 20, 40}, nil)}, "", "")
	rows := Diff(base, cur, 1.0)
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	// hot dropped 80%→40% and newcomer appeared at 40%: both |delta| 40.
	if rows[0].Name != "hot" && rows[0].Name != "newcomer" {
		t.Fatalf("top delta = %+v", rows[0])
	}
	for _, row := range rows {
		if row.Name == "steady" && row.DeltaPct != 0 {
			t.Fatalf("steady delta = %v", row.DeltaPct)
		}
	}
	// minPct filter drops everything when the threshold is above all shares.
	if got := Diff(base, cur, 99); len(got) != 0 {
		t.Fatalf("minPct filter: %+v", got)
	}
}

func TestBaselineCheck(t *testing.T) {
	base, _ := NewRollup([]*Profile{synthetic(allocSpace,
		[][]string{{"hot"}, {"steady"}}, []int64{80, 20}, nil)}, "", "")
	b := NewBaseline(base, 10, "test")
	if len(b.Frames) != 2 || b.Sample != "alloc_space/bytes" {
		t.Fatalf("baseline = %+v", b)
	}

	// Identical profile: clean.
	if v := Check(b, base, DefaultCheckOpts()); len(v) != 0 {
		t.Fatalf("self check: %+v", v)
	}

	// New frame above NewPct fails; growth past factor fails.
	cur, _ := NewRollup([]*Profile{synthetic(allocSpace,
		[][]string{{"hot"}, {"steady"}, {"leak"}}, []int64{80, 70, 50}, nil)}, "", "")
	viol := Check(b, cur, DefaultCheckOpts())
	kinds := map[string]string{}
	for _, v := range viol {
		kinds[ShortName(v.Frame)] = v.Kind
	}
	if kinds["leak"] != "new-frame" {
		t.Errorf("leak: %+v", viol)
	}
	if kinds["steady"] != "growth" { // 20% -> 35% > 1.5×
		t.Errorf("steady: %+v", viol)
	}
	if _, bad := kinds["hot"]; bad { // shrank 80% -> 40%: improvements free
		t.Errorf("hot should not violate: %+v", viol)
	}

	// Sample-type mismatch is its own violation.
	cpu, _ := NewRollup([]*Profile{synthetic(ValueType{Type: "cpu", Unit: "nanoseconds"},
		[][]string{{"hot"}}, []int64{10}, nil)}, "", "")
	if v := Check(b, cpu, DefaultCheckOpts()); len(v) != 1 || v[0].Kind != "sample-mismatch" {
		t.Fatalf("mismatch check: %+v", v)
	}
}

func TestBaselineFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_prof.json")
	base, _ := NewRollup([]*Profile{synthetic(allocSpace,
		[][]string{{"hot"}}, []int64{100}, nil)}, "", "")
	if err := WriteBaseline(path, NewBaseline(base, 5, "unit test")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Frames) != 1 || got.Frames[0].Name != "hot" || got.Frames[0].FlatPct != 100 {
		t.Fatalf("round trip = %+v", got)
	}
	if !IsBaselineFile(path) {
		t.Fatal("IsBaselineFile should recognise BENCH_prof.json")
	}
	bench := filepath.Join(dir, "BENCH_sweep.json")
	writeFile(t, bench, `{"benchmarks":[{"name":"x","ns_per_op":1}]}`)
	if IsBaselineFile(bench) {
		t.Fatal("bench timings file misdetected as profile baseline")
	}
	if _, err := ReadBaseline(bench); err == nil {
		t.Fatal("ReadBaseline should reject a frameless file")
	}
}

func TestFormatValueAndShortName(t *testing.T) {
	if got := FormatValue(2_500_000, "nanoseconds"); got != "2.5ms" {
		t.Fatal(got)
	}
	if got := FormatValue(2048, "bytes"); got != "2.0KB" {
		t.Fatal(got)
	}
	if got := FormatValue(3<<20, "bytes"); got != "3.0MB" {
		t.Fatal(got)
	}
	if got := FormatValue(7, "count"); got != "7" {
		t.Fatal(got)
	}
	if got := ShortName("heb/internal/sim.(*Engine).Run"); got != "sim.(*Engine).Run" {
		t.Fatal(got)
	}
	if got := ShortName("main.main"); got != "main.main" {
		t.Fatal(got)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
