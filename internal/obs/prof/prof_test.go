package prof

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseKinds(t *testing.T) {
	got, err := ParseKinds("heap, cpu,cpu")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, ",") != "cpu,heap" {
		t.Fatalf("want normalised [cpu heap], got %v", got)
	}
	if got, err := ParseKinds("all"); err != nil || len(got) != len(Kinds) {
		t.Fatalf("all => %v, %v", got, err)
	}
	for _, bad := range []string{"", "  ", "goroutine", "cpu,nope"} {
		if _, err := ParseKinds(bad); err == nil {
			t.Errorf("ParseKinds(%q): want error", bad)
		}
	}
}

func TestKindFromFile(t *testing.T) {
	for _, k := range Kinds {
		got, ok := KindFromFile(FileName(k))
		if !ok || got != k {
			t.Errorf("round trip %q -> %q, %v", k, got, ok)
		}
	}
	for _, bad := range []string{"cpu.pb", "trace.json", "goroutine.pb.gz"} {
		if _, ok := KindFromFile(bad); ok {
			t.Errorf("KindFromFile(%q): want !ok", bad)
		}
	}
}

// burn gives the CPU profiler something attributable to this function.
//
//go:noinline
func burn(n int) int {
	acc := 0
	for i := 0; i < n; i++ {
		acc += i * i % 7
	}
	return acc
}

// TestCollectorRoundTrip exercises the full loop the simulator uses:
// collect real profiles under cell labels, then decode them with our
// parser and check structure, labels and rollups.
func TestCollectorRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := NewCollector(dir, []string{"cpu", "heap", "allocs"})
	if Active() {
		t.Fatal("Active before Start")
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if !Active() {
		t.Fatal("not Active after Start")
	}
	sink := 0
	var escape [][]byte
	DoCell("HEBD", "websearch", 42, func(ctx context.Context) {
		SetPhase(ctx, PhaseSteps)
		for i := 0; i < 400; i++ {
			sink += burn(200_000)
			escape = append(escape, make([]byte, 4096))
		}
		SetPhase(ctx, PhaseFinish)
	})
	_ = sink
	_ = escape
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	if Active() {
		t.Fatal("still Active after Stop")
	}

	files := c.Files()
	if len(files) != 3 {
		t.Fatalf("Files() = %v", files)
	}
	for _, rel := range files {
		if _, err := os.Stat(filepath.Join(dir, rel)); err != nil {
			t.Fatalf("missing artifact %s: %v", rel, err)
		}
	}

	cpu, err := ParseFile(filepath.Join(dir, Dir, FileName("cpu")))
	if err != nil {
		t.Fatalf("parse cpu: %v", err)
	}
	if len(cpu.SampleTypes) == 0 {
		t.Fatal("cpu profile has no sample types")
	}
	idx, err := cpu.SampleTypeIndex("cpu")
	if err != nil {
		t.Fatal(err)
	}
	if unit := cpu.SampleTypes[idx].Unit; unit != "nanoseconds" {
		t.Fatalf("cpu unit = %q", unit)
	}
	// The workload above burns ~hundreds of ms, so samples must exist and
	// mostly carry the cell labels.
	if len(cpu.Samples) == 0 {
		t.Skip("no CPU samples captured (starved CI runner)")
	}
	share, combos := LabeledShare(cpu)
	if share < 0.5 {
		t.Errorf("labeled share = %.2f, want >= 0.5", share)
	}
	if combos < 1 {
		t.Errorf("labeled combos = %d", combos)
	}
	var sawBurn, sawLabels bool
	for _, s := range cpu.Samples {
		for _, fn := range cpu.Stack(s) {
			if strings.Contains(fn, "burn") {
				sawBurn = true
			}
		}
		if s.Labels[LabelScheme] == "HEBD" && s.Labels[LabelWorkload] == "websearch" &&
			s.Labels[LabelSeed] == "42" && s.Labels[LabelPhase] == PhaseSteps {
			sawLabels = true
		}
	}
	if !sawBurn {
		t.Error("burn frame not found in any CPU stack")
	}
	if !sawLabels {
		t.Error("no sample carries the full cell label set in phase=steps")
	}

	allocs, err := ParseFile(filepath.Join(dir, Dir, FileName("allocs")))
	if err != nil {
		t.Fatalf("parse allocs: %v", err)
	}
	if _, err := allocs.SampleTypeIndex("alloc_space"); err != nil {
		t.Fatal(err)
	}
	r, err := NewRollup([]*Profile{allocs}, "alloc_space", "")
	if err != nil {
		t.Fatal(err)
	}
	if r.Total <= 0 {
		t.Fatalf("allocs rollup total = %d", r.Total)
	}
	if len(r.Top(5)) == 0 {
		t.Fatal("allocs rollup has no frames")
	}
}

func TestSetPhaseNilCtx(t *testing.T) {
	SetPhase(nil, PhaseSteps) // must not panic when profiling is off
}

func TestParseRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.pb.gz")
	if err := os.WriteFile(bad, []byte("{\"not\": \"a profile\"}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseFile(bad); err == nil {
		t.Fatal("want parse error for garbage file")
	}
}

func TestCollectorStartTwice(t *testing.T) {
	c := NewCollector(t.TempDir(), []string{"heap"})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err == nil {
		t.Fatal("second Start should fail")
	}
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := c.Stop(); err != nil { // idempotent
		t.Fatal(err)
	}
}
