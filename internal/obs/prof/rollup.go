package prof

import (
	"fmt"
	"sort"
	"strings"
)

// Frame is one function's rollup across every sample that mentions it:
// Flat is the value where the function is the leaf, Cum the value of
// every stack it appears in (counted once per sample even for recursive
// frames).
type Frame struct {
	Name string
	Flat int64
	Cum  int64
}

// Rollup aggregates one or more profiles of the same kind into per-frame
// totals, optionally grouped by a pprof label key.
type Rollup struct {
	// Sample identifies the aggregated value column, e.g. "cpu/nanoseconds".
	Sample ValueType
	// Total is the sum of the headline value across all samples.
	Total int64
	// Frames maps function name to its rollup.
	Frames map[string]*Frame
	// ByLabel groups the headline value by one label's values when a
	// group key was requested (e.g. phase=steps -> nanos).
	ByLabel map[string]int64
}

// NewRollup aggregates profiles into one rollup. sampleType selects the
// value column by name ("" = the profile's headline column); groupLabel,
// when non-empty, also buckets totals by that pprof label's values
// (samples without the label land in "(none)"). All profiles must carry
// the selected sample type.
func NewRollup(profiles []*Profile, sampleType, groupLabel string) (*Rollup, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("prof: no profiles to roll up")
	}
	r := &Rollup{Frames: map[string]*Frame{}}
	if groupLabel != "" {
		r.ByLabel = map[string]int64{}
	}
	for _, p := range profiles {
		idx, err := p.SampleTypeIndex(sampleType)
		if err != nil {
			return nil, err
		}
		st := p.SampleTypes[idx]
		if r.Sample.Type == "" {
			r.Sample = st
		} else if r.Sample != st {
			return nil, fmt.Errorf("prof: mixed sample types %v and %v", r.Sample, st)
		}
		for _, s := range p.Samples {
			if idx >= len(s.Values) {
				continue
			}
			v := s.Values[idx]
			if v == 0 {
				continue
			}
			r.Total += v
			if r.ByLabel != nil {
				key := s.Labels[groupLabel]
				if key == "" {
					key = "(none)"
				}
				r.ByLabel[key] += v
			}
			stack := p.Stack(s)
			if len(stack) == 0 {
				continue
			}
			frame := func(name string) *Frame {
				f := r.Frames[name]
				if f == nil {
					f = &Frame{Name: name}
					r.Frames[name] = f
				}
				return f
			}
			frame(stack[0]).Flat += v
			// Cum counts each function once per sample, so recursion
			// doesn't double-book.
			inStack := map[string]bool{}
			for _, name := range stack {
				if !inStack[name] {
					inStack[name] = true
					frame(name).Cum += v
				}
			}
		}
	}
	return r, nil
}

// Top returns frames sorted by Flat descending (ties by name), truncated
// to n (n <= 0 means all).
func (r *Rollup) Top(n int) []Frame {
	out := make([]Frame, 0, len(r.Frames))
	for _, f := range r.Frames {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flat != out[j].Flat {
			return out[i].Flat > out[j].Flat
		}
		return out[i].Name < out[j].Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// FlatPct is a frame's flat value as a percentage of the rollup total.
func (r *Rollup) FlatPct(f Frame) float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(f.Flat) / float64(r.Total)
}

// DiffRow is one frame's before/after comparison. Pcts are of each
// side's own total, so diffs are robust to different run lengths.
type DiffRow struct {
	Name              string
	BaseFlat, NewFlat int64
	BasePct, NewPct   float64
	// DeltaPct is NewPct - BasePct in percentage points.
	DeltaPct float64
}

// Diff compares two rollups frame by frame, returning rows sorted by
// |DeltaPct| descending. Frames below minPct flat share on both sides
// are dropped as noise.
func Diff(base, cur *Rollup, minPct float64) []DiffRow {
	names := map[string]bool{}
	for n := range base.Frames {
		names[n] = true
	}
	for n := range cur.Frames {
		names[n] = true
	}
	var rows []DiffRow
	for n := range names {
		row := DiffRow{Name: n}
		if f, ok := base.Frames[n]; ok {
			row.BaseFlat = f.Flat
			row.BasePct = base.FlatPct(*f)
		}
		if f, ok := cur.Frames[n]; ok {
			row.NewFlat = f.Flat
			row.NewPct = cur.FlatPct(*f)
		}
		if row.BasePct < minPct && row.NewPct < minPct {
			continue
		}
		row.DeltaPct = row.NewPct - row.BasePct
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		di, dj := abs(rows[i].DeltaPct), abs(rows[j].DeltaPct)
		if di != dj {
			return di > dj
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// FormatValue renders a sample value in its unit (ms for nanoseconds,
// KB/MB for bytes, plain for counts).
func FormatValue(v int64, unit string) string {
	switch unit {
	case "nanoseconds":
		return fmt.Sprintf("%.1fms", float64(v)/1e6)
	case "bytes":
		switch {
		case v >= 1<<20:
			return fmt.Sprintf("%.1fMB", float64(v)/(1<<20))
		case v >= 1<<10:
			return fmt.Sprintf("%.1fKB", float64(v)/(1<<10))
		}
		return fmt.Sprintf("%dB", v)
	default:
		return fmt.Sprintf("%d", v)
	}
}

// ShortName trims a fully qualified Go symbol to pkg.Func for table
// display: "heb/internal/sim.(*Engine).Run" -> "sim.(*Engine).Run".
func ShortName(name string) string {
	if i := strings.LastIndex(name, "/"); i >= 0 {
		return name[i+1:]
	}
	return name
}
