package prof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
)

// This file is a dependency-free reader for the pprof protocol-buffer
// profile format (profile.proto) that runtime/pprof emits. The repo bakes
// in no third-party modules, so the differential profiler decodes the
// wire format directly: profiles are small (a handful of KB), the schema
// is frozen, and hebprof only needs sample values, stack frames and
// sample labels — not the full pprof feature surface.

// Profile is the decoded subset of a pprof proto that the rollup and
// validation layers consume.
type Profile struct {
	// SampleTypes names the columns of every sample's Values, e.g.
	// [samples/count, cpu/nanoseconds] for a CPU profile or
	// [alloc_objects/count, alloc_space/bytes, ...] for heap profiles.
	SampleTypes []ValueType
	// Samples are the profile's measurements.
	Samples []Sample
	// DurationNanos is the profiled wall-clock span (0 when unset).
	DurationNanos int64
	// DefaultSampleType names the headline column the producer intends
	// ("alloc_space" for the allocs profile, "inuse_space" for heap —
	// the two share a schema and differ only here). Empty when unset.
	DefaultSampleType string

	strings   []string
	functions map[uint64]string   // function id -> name
	locations map[uint64][]uint64 // location id -> function ids, leaf first
}

// ValueType is one sample-value column descriptor.
type ValueType struct {
	Type, Unit string
}

func (v ValueType) String() string { return v.Type + "/" + v.Unit }

// Sample is one measurement: a call stack (leaf first, as frame names),
// one value per sample type, and the pprof labels attached by pprof.Do.
type Sample struct {
	// LocationIDs is the raw stack, leaf first.
	LocationIDs []uint64
	// Values holds one value per SampleTypes column.
	Values []int64
	// Labels are the sample's string-valued pprof labels (scheme,
	// workload, seed, phase for labeled sweep cells).
	Labels map[string]string
}

// Stack resolves a sample's frames to function names, leaf first. Inlined
// frames expand in place.
func (p *Profile) Stack(s Sample) []string {
	var out []string
	for _, loc := range s.LocationIDs {
		for _, fid := range p.locations[loc] {
			if name := p.functions[fid]; name != "" {
				out = append(out, name)
			}
		}
	}
	return out
}

// SampleTypeIndex resolves a sample-type name ("cpu", "alloc_space", ...)
// to its column index; an empty name selects the profile's headline
// column — its declared default_sample_type when set (alloc_space for
// the allocs profile), else the last column (cpu/nanoseconds for CPU
// profiles, inuse_space for heap).
func (p *Profile) SampleTypeIndex(name string) (int, error) {
	if name == "" {
		if len(p.SampleTypes) == 0 {
			return 0, fmt.Errorf("prof: profile has no sample types")
		}
		if p.DefaultSampleType != "" {
			name = p.DefaultSampleType
		} else {
			return len(p.SampleTypes) - 1, nil
		}
	}
	for i, st := range p.SampleTypes {
		if st.Type == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("prof: no sample type %q (have %v)", name, p.SampleTypes)
}

// ParseFile reads one pprof proto (gzipped or raw) from disk.
func ParseFile(path string) (*Profile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := Parse(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// Parse decodes a pprof proto stream; a gzip magic prefix is transparently
// unwrapped (runtime/pprof always gzips).
func Parse(r io.Reader) (*Profile, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(raw) >= 2 && raw[0] == 0x1f && raw[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
		raw, err = io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
	}
	p := &Profile{
		functions: map[uint64]string{},
		locations: map[uint64][]uint64{},
	}
	type rawLabel struct{ key, str int64 }
	type rawSample struct {
		locs   []uint64
		values []int64
		labels []rawLabel
	}
	type rawValueType struct{ typ, unit int64 }
	var sampleTypes []rawValueType
	var samples []rawSample
	var defaultSampleType int64     // string-table index, 0 = unset
	funcNames := map[uint64]int64{} // function id -> string-table index

	d := decoder{buf: raw}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1: // sample_type
			msg, err := d.bytes(wire)
			if err != nil {
				return nil, err
			}
			vt := rawValueType{}
			if err := walk(msg, func(f int, v uint64, b []byte) {
				switch f {
				case 1:
					vt.typ = int64(v)
				case 2:
					vt.unit = int64(v)
				}
			}); err != nil {
				return nil, err
			}
			sampleTypes = append(sampleTypes, vt)
		case 2: // sample
			msg, err := d.bytes(wire)
			if err != nil {
				return nil, err
			}
			s := rawSample{}
			if err := walk(msg, func(f int, v uint64, b []byte) {
				switch f {
				case 1:
					if b != nil {
						s.locs = append(s.locs, unpackUvarints(b)...)
					} else {
						s.locs = append(s.locs, v)
					}
				case 2:
					if b != nil {
						for _, u := range unpackUvarints(b) {
							s.values = append(s.values, int64(u))
						}
					} else {
						s.values = append(s.values, int64(v))
					}
				case 3:
					lbl := rawLabel{}
					_ = walk(b, func(lf int, lv uint64, _ []byte) {
						switch lf {
						case 1:
							lbl.key = int64(lv)
						case 2:
							lbl.str = int64(lv)
						}
					})
					s.labels = append(s.labels, lbl)
				}
			}); err != nil {
				return nil, err
			}
			samples = append(samples, s)
		case 4: // location
			msg, err := d.bytes(wire)
			if err != nil {
				return nil, err
			}
			var id uint64
			var fids []uint64
			if err := walk(msg, func(f int, v uint64, b []byte) {
				switch f {
				case 1:
					id = v
				case 4: // line
					_ = walk(b, func(lf int, lv uint64, _ []byte) {
						if lf == 1 {
							fids = append(fids, lv)
						}
					})
				}
			}); err != nil {
				return nil, err
			}
			p.locations[id] = fids
		case 5: // function
			msg, err := d.bytes(wire)
			if err != nil {
				return nil, err
			}
			var id uint64
			var name int64
			if err := walk(msg, func(f int, v uint64, _ []byte) {
				switch f {
				case 1:
					id = v
				case 2:
					name = int64(v)
				}
			}); err != nil {
				return nil, err
			}
			funcNames[id] = name
		case 6: // string_table
			b, err := d.bytes(wire)
			if err != nil {
				return nil, err
			}
			p.strings = append(p.strings, string(b))
		case 10: // duration_nanos
			v, err := d.varint(wire)
			if err != nil {
				return nil, err
			}
			p.DurationNanos = int64(v)
		case 14: // default_sample_type
			v, err := d.varint(wire)
			if err != nil {
				return nil, err
			}
			defaultSampleType = int64(v)
		default:
			if err := d.skip(wire); err != nil {
				return nil, err
			}
		}
	}
	if len(p.strings) == 0 {
		return nil, fmt.Errorf("prof: no string table — not a pprof proto")
	}
	str := func(i int64) string {
		if i < 0 || int(i) >= len(p.strings) {
			return ""
		}
		return p.strings[i]
	}
	// Function names arrive as string-table indices; the table may appear
	// after the functions in the stream, so resolve them only now.
	for id, idx := range funcNames {
		p.functions[id] = str(idx)
	}
	for _, vt := range sampleTypes {
		p.SampleTypes = append(p.SampleTypes, ValueType{Type: str(vt.typ), Unit: str(vt.unit)})
	}
	if len(p.SampleTypes) == 0 {
		return nil, fmt.Errorf("prof: profile declares no sample types")
	}
	p.DefaultSampleType = str(defaultSampleType)
	for _, rs := range samples {
		s := Sample{LocationIDs: rs.locs, Values: rs.values}
		for _, l := range rs.labels {
			if k, v := str(l.key), str(l.str); k != "" && v != "" {
				if s.Labels == nil {
					s.Labels = map[string]string{}
				}
				s.Labels[k] = v
			}
		}
		p.Samples = append(p.Samples, s)
	}
	return p, nil
}

// decoder is a minimal protobuf wire-format cursor.
type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) done() bool { return d.pos >= len(d.buf) }

// tag reads the next field number and wire type.
func (d *decoder) tag() (field, wire int, err error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, 0, err
	}
	return int(v >> 3), int(v & 7), nil
}

func (d *decoder) uvarint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if d.pos >= len(d.buf) {
			return 0, fmt.Errorf("prof: truncated varint")
		}
		b := d.buf[d.pos]
		d.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
		if shift >= 64 {
			return 0, fmt.Errorf("prof: varint overflow")
		}
	}
}

// varint reads a wire-type-0 value (erroring on other wire types).
func (d *decoder) varint(wire int) (uint64, error) {
	if wire != 0 {
		return 0, fmt.Errorf("prof: expected varint, got wire type %d", wire)
	}
	return d.uvarint()
}

// bytes reads a wire-type-2 length-delimited payload.
func (d *decoder) bytes(wire int) ([]byte, error) {
	if wire != 2 {
		return nil, fmt.Errorf("prof: expected bytes, got wire type %d", wire)
	}
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return nil, fmt.Errorf("prof: truncated field (%d bytes declared, %d left)", n, len(d.buf)-d.pos)
	}
	b := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

// skip discards one field of any wire type.
func (d *decoder) skip(wire int) error {
	switch wire {
	case 0:
		_, err := d.uvarint()
		return err
	case 1:
		if len(d.buf)-d.pos < 8 {
			return fmt.Errorf("prof: truncated fixed64")
		}
		d.pos += 8
		return nil
	case 2:
		_, err := d.bytes(wire)
		return err
	case 5:
		if len(d.buf)-d.pos < 4 {
			return fmt.Errorf("prof: truncated fixed32")
		}
		d.pos += 4
		return nil
	default:
		return fmt.Errorf("prof: unsupported wire type %d", wire)
	}
}

// walk iterates a message's fields, calling fn with (field, varintValue,
// bytesValue): varint fields pass (v, nil), length-delimited fields pass
// (0, bytes). Unknown and fixed-width fields are skipped.
func walk(msg []byte, fn func(field int, v uint64, b []byte)) error {
	d := decoder{buf: msg}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return err
		}
		switch wire {
		case 0:
			v, err := d.uvarint()
			if err != nil {
				return err
			}
			fn(field, v, nil)
		case 2:
			b, err := d.bytes(wire)
			if err != nil {
				return err
			}
			fn(field, 0, b)
		default:
			if err := d.skip(wire); err != nil {
				return err
			}
		}
	}
	return nil
}

// unpackUvarints decodes a packed repeated varint payload.
func unpackUvarints(b []byte) []uint64 {
	var out []uint64
	d := decoder{buf: b}
	for !d.done() {
		v, err := d.uvarint()
		if err != nil {
			return out
		}
		out = append(out, v)
	}
	return out
}
