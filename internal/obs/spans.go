package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer records hierarchical spans (sweep → cell → run → slot →
// step-batch) and exports them as Chrome trace-event JSON loadable in
// Perfetto / chrome://tracing.
//
// By default the tracer runs on a deterministic *virtual* clock: each
// track advances its own cursor by modeled per-phase costs instead of
// reading wall time. That is what lets trace.json satisfy the capture
// guarantee — byte-identical output for any -workers count — which no
// wall clock can. NewWallTracer swaps in real timestamps for genuine
// profiling at the cost of reproducibility.
type Tracer struct {
	mu     sync.Mutex
	wall   bool
	start  time.Time
	tracks []*Track
}

// NewTracer builds a deterministic virtual-clock tracer.
func NewTracer() *Tracer { return &Tracer{} }

// NewWallTracer builds a wall-clock tracer. Its output reflects real
// elapsed time and is NOT reproducible across invocations or worker
// counts.
func NewWallTracer() *Tracer {
	return &Tracer{wall: true, start: time.Now()}
}

// Wall reports whether the tracer uses the wall clock.
func (t *Tracer) Wall() bool { return t != nil && t.wall }

// NewTrack opens a named event track. group becomes the trace process
// (one per sweep cell), name the thread within it (one per run). Tracks
// may be created and written concurrently; each track is single-writer.
func (t *Tracer) NewTrack(group, name string) *Track {
	tr := &Track{tracer: t, group: group, name: name}
	t.mu.Lock()
	t.tracks = append(t.tracks, tr)
	t.mu.Unlock()
	return tr
}

// Virtual per-phase costs in microseconds. The absolute values are
// arbitrary; only their ratios shape the rendered trace, roughly matching
// the measured relative cost of the phases.
const (
	// VirtualStepUS is the modeled cost of one engine step.
	VirtualStepUS = 2
	// VirtualPlanUS is the modeled cost of one hControl slot plan.
	VirtualPlanUS = 40
	// VirtualFinishUS is the modeled cost of closing a slot.
	VirtualFinishUS = 5
)

// Track is one timeline within a tracer. Not safe for concurrent use; the
// engine writes each track from its single run goroutine.
type Track struct {
	tracer *Tracer
	group  string
	name   string

	cursor int64 // virtual microseconds since track start
	stack  []openSpan
	spans  []span
}

type openSpan struct {
	name, cat string
	startUS   int64
}

type span struct {
	name, cat string
	startUS   int64
	durUS     int64
	depth     int
}

// now returns the track's current timestamp in microseconds.
func (tr *Track) now() int64 {
	if tr.tracer.wall {
		return time.Since(tr.tracer.start).Microseconds()
	}
	return tr.cursor
}

// Advance moves the virtual clock forward by us microseconds (a no-op on
// wall-clock tracers, where time advances by itself).
func (tr *Track) Advance(us int64) {
	if tr == nil || tr.tracer.wall {
		return
	}
	tr.cursor += us
}

// Begin opens a span. Spans must nest: every Begin is closed by the
// matching End in LIFO order.
func (tr *Track) Begin(name, cat string) {
	if tr == nil {
		return
	}
	tr.stack = append(tr.stack, openSpan{name: name, cat: cat, startUS: tr.now()})
}

// End closes the innermost open span.
func (tr *Track) End() {
	if tr == nil || len(tr.stack) == 0 {
		return
	}
	top := tr.stack[len(tr.stack)-1]
	tr.stack = tr.stack[:len(tr.stack)-1]
	end := tr.now()
	dur := end - top.startUS
	if dur < 0 {
		dur = 0
	}
	tr.spans = append(tr.spans, span{
		name:    top.name,
		cat:     top.cat,
		startUS: top.startUS,
		durUS:   dur,
		depth:   len(tr.stack),
	})
}

// TraceEvent is one Chrome trace-event object. Only the fields the
// trace-event format requires for complete ("X") and metadata ("M")
// events are modeled.
type TraceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// Events flattens the tracer into trace events in deterministic order:
// tracks sorted by (group, name), pids assigned per group and tids per
// track in that order, process/thread name metadata first, then each
// track's spans in start order (outer before inner on ties).
func (t *Tracer) Events() []TraceEvent {
	t.mu.Lock()
	tracks := append([]*Track(nil), t.tracks...)
	t.mu.Unlock()
	sort.SliceStable(tracks, func(i, j int) bool {
		if tracks[i].group != tracks[j].group {
			return tracks[i].group < tracks[j].group
		}
		return tracks[i].name < tracks[j].name
	})

	var out []TraceEvent
	pids := make(map[string]int)
	tids := make(map[string]int)
	for _, tr := range tracks {
		pid, ok := pids[tr.group]
		if !ok {
			pid = len(pids) + 1
			pids[tr.group] = pid
			out = append(out, TraceEvent{
				Name: "process_name", Phase: "M", PID: pid,
				Args: map[string]any{"name": tr.group},
			})
		}
		tids[tr.group]++
		tid := tids[tr.group]
		out = append(out, TraceEvent{
			Name: "thread_name", Phase: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": tr.name},
		})
		spans := append([]span(nil), tr.spans...)
		sort.SliceStable(spans, func(i, j int) bool {
			if spans[i].startUS != spans[j].startUS {
				return spans[i].startUS < spans[j].startUS
			}
			return spans[i].depth < spans[j].depth
		})
		for _, s := range spans {
			out = append(out, TraceEvent{
				Name: s.name, Cat: s.cat, Phase: "X",
				TS: s.startUS, Dur: s.durUS, PID: pid, TID: tid,
			})
		}
	}
	return out
}

// WriteChromeTrace writes the tracer in Chrome trace-event JSON array
// format. Output is deterministic for virtual-clock tracers.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteTraceEvents(w, t.Events())
}

// WriteTraceEvents writes events as a JSON array, one event per line for
// diffability.
func WriteTraceEvents(w io.Writer, events []TraceEvent) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return fmt.Errorf("obs: write trace: %w", err)
	}
	for i, e := range events {
		b, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("obs: write trace: %w", err)
		}
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return fmt.Errorf("obs: write trace: %w", err)
			}
		}
		if _, err := bw.Write(b); err != nil {
			return fmt.Errorf("obs: write trace: %w", err)
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return fmt.Errorf("obs: write trace: %w", err)
	}
	return bw.Flush()
}

// ReadChromeTrace parses a trace-event JSON array.
func ReadChromeTrace(r io.Reader) ([]TraceEvent, error) {
	var out []TraceEvent
	dec := json.NewDecoder(r)
	if err := dec.Decode(&out); err != nil {
		return nil, fmt.Errorf("obs: read trace: %w", err)
	}
	return out, nil
}

// ValidateTrace checks events against the trace-event format rules the
// viewers actually enforce: known phases, non-negative timestamps and
// durations, metadata naming, and per-thread X-event nesting (a complete
// event must either be disjoint from or fully contain any later event
// that starts inside it).
func ValidateTrace(events []TraceEvent) error {
	type tkey struct{ pid, tid int }
	open := make(map[tkey][]TraceEvent)
	for i, e := range events {
		switch e.Phase {
		case "M":
			if e.Name != "process_name" && e.Name != "thread_name" {
				return fmt.Errorf("obs: trace event %d: unknown metadata %q", i, e.Name)
			}
			if name, ok := e.Args["name"].(string); !ok || name == "" {
				return fmt.Errorf("obs: trace event %d: metadata without args.name", i)
			}
		case "X":
			if e.Name == "" {
				return fmt.Errorf("obs: trace event %d: unnamed complete event", i)
			}
			if e.TS < 0 || e.Dur < 0 {
				return fmt.Errorf("obs: trace event %d (%s): negative ts/dur", i, e.Name)
			}
			k := tkey{e.PID, e.TID}
			stack := open[k]
			for len(stack) > 0 {
				top := stack[len(stack)-1]
				if e.TS >= top.TS+top.Dur {
					stack = stack[:len(stack)-1]
					continue
				}
				if e.TS+e.Dur > top.TS+top.Dur {
					return fmt.Errorf("obs: trace event %d (%s): overlaps %s without nesting", i, e.Name, top.Name)
				}
				break
			}
			open[k] = append(stack, e)
		default:
			return fmt.Errorf("obs: trace event %d: unsupported phase %q", i, e.Phase)
		}
	}
	return nil
}

// PhaseStat is one phase's rollup across a trace: how often it ran, its
// total (inclusive) time and its self time with nested spans subtracted.
type PhaseStat struct {
	Name    string
	Count   int64
	TotalUS int64
	SelfUS  int64
}

// Rollup aggregates a trace's complete events per span name, computing
// self time by subtracting each span's directly nested children. Results
// sort by descending self time, name breaking ties.
func Rollup(events []TraceEvent) []PhaseStat {
	type tkey struct{ pid, tid int }
	agg := make(map[string]*PhaseStat)
	get := func(name string) *PhaseStat {
		s, ok := agg[name]
		if !ok {
			s = &PhaseStat{Name: name}
			agg[name] = s
		}
		return s
	}
	type frame struct {
		name  string
		endUS int64
	}
	stacks := make(map[tkey][]frame)
	for _, e := range events {
		if e.Phase != "X" {
			continue
		}
		k := tkey{e.PID, e.TID}
		stack := stacks[k]
		// Retire frames this event starts after.
		for len(stack) > 0 && e.TS >= stack[len(stack)-1].endUS {
			stack = stack[:len(stack)-1]
		}
		s := get(e.Name)
		s.Count++
		s.TotalUS += e.Dur
		s.SelfUS += e.Dur
		if len(stack) > 0 {
			// This span's time is nested inside its parent: remove it from
			// the parent's self time.
			get(stack[len(stack)-1].name).SelfUS -= e.Dur
		}
		stack = append(stack, frame{name: e.Name, endUS: e.TS + e.Dur})
		stacks[k] = stack
	}
	out := make([]PhaseStat, 0, len(agg))
	for _, s := range agg {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SelfUS != out[j].SelfUS {
			return out[i].SelfUS > out[j].SelfUS
		}
		return out[i].Name < out[j].Name
	})
	return out
}
