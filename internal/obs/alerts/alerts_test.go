package alerts

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{{"off", ModeOff}, {"report", ModeReport}, {"strict", ModeStrict}} {
		got, err := ParseMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseMode(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("Mode(%v).String() = %q", got, got.String())
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("accepted unknown mode")
	}
}

func TestKindRoundTrip(t *testing.T) {
	for k := Kind(0); k < Kind(NumKinds); k++ {
		parsed, err := ParseKind(k.String())
		if err != nil || parsed != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), parsed, err)
		}
	}
	if _, err := ParseKind("not_a_rule"); err == nil {
		t.Error("accepted unknown kind")
	}
}

func TestOffModeIsNil(t *testing.T) {
	a := NewEngine(ModeOff, Rules{})
	if a != nil {
		t.Fatal("ModeOff engine not nil")
	}
	// Every method must be nil-safe.
	a.ObserveSoC(0, "battery/0", -1)
	a.ObserveMismatch(0, true, 1)
	a.ObserveLedger(0, 5, 1)
	a.ObserveRamp(0, 1e9)
	a.ObserveRelays(0, false, 5, 6)
	a.ObserveWear(0, "battery", 100)
	a.ObserveCheckpoint(0, "x", "y")
	if a.Violated() || a.Strict() || a.Mode() != ModeOff {
		t.Error("nil engine reports activity")
	}
	if r := a.Report(); r.Health != HealthOK {
		t.Errorf("nil engine health %q", r.Health)
	}
	if a.TakeFired() != nil || a.Events() != nil {
		t.Error("nil engine produced events")
	}
}

func TestDebounceArmsAfterConsecutiveViolations(t *testing.T) {
	a := NewEngine(ModeReport, Rules{DebounceSteps: 3})
	// Two violations, a clean step, two more: never fires.
	a.ObserveSoC(0, "b", 0.01)
	a.ObserveSoC(1, "b", 0.01)
	a.ObserveSoC(2, "b", 0.5)
	a.ObserveSoC(3, "b", 0.01)
	a.ObserveSoC(4, "b", 0.01)
	if got := a.Report().Events; got != 0 {
		t.Fatalf("fired %d alerts before debounce threshold", got)
	}
	// The third consecutive violation (t=3,4,5) fires exactly once;
	// further violations while firing stay silent.
	a.ObserveSoC(5, "b", 0.01)
	a.ObserveSoC(6, "b", 0.01)
	a.ObserveSoC(7, "b", 0.01)
	r := a.Report()
	if r.Criticals != 1 || r.Counts["soc_floor"] != 1 {
		t.Fatalf("debounced fire wrong: %+v", r)
	}
	ev := a.Events()
	if len(ev) != 1 || ev[0].Seconds != 5 || ev[0].Kind != KindSoCFloor || ev[0].Device != "b" {
		t.Fatalf("event wrong: %+v", ev)
	}
}

func TestHysteresisReArmsAfterCleanRun(t *testing.T) {
	a := NewEngine(ModeReport, Rules{DebounceSteps: 1, HysteresisSteps: 3})
	a.ObserveRamp(0, 1e6) // fires
	a.ObserveRamp(1, 1e6) // still firing: no second event
	if got := a.Report().Events; got != 1 {
		t.Fatalf("re-fired while firing: %d events", got)
	}
	// Two clean steps do not re-arm...
	a.ObserveRamp(2, 0)
	a.ObserveRamp(3, 0)
	a.ObserveRamp(4, 1e6)
	if got := a.Report().Events; got != 1 {
		t.Fatalf("re-armed before hysteresis: %d events", got)
	}
	// ...three do (the violation above reset the clean counter, so run
	// three more).
	a.ObserveRamp(5, 0)
	a.ObserveRamp(6, 0)
	a.ObserveRamp(7, 0)
	a.ObserveRamp(8, 1e6)
	if got := a.Report().Events; got != 2 {
		t.Fatalf("second excursion did not fire: %d events", got)
	}
}

func TestStructuralRulesSkipDebounce(t *testing.T) {
	a := NewEngine(ModeReport, Rules{DebounceSteps: 100})
	a.ObserveRelays(0, false, 5, 6)
	a.ObserveCheckpoint(0, "", "h1")
	a.ObserveCheckpoint(1, "bogus", "h2")
	r := a.Report()
	if r.Counts["relay_exclusivity"] != 1 || r.Counts["checkpoint_chain"] != 1 {
		t.Fatalf("structural rules debounced: %+v", r)
	}
	if r.Health != HealthCritical || !a.Violated() {
		t.Error("structural criticals did not turn health critical")
	}
}

func TestMismatchWindowTiming(t *testing.T) {
	a := NewEngine(ModeReport, Rules{MismatchWindowSeconds: 10, DebounceSteps: 1})
	for i := 0; i < 10; i++ {
		a.ObserveMismatch(float64(i), true, 1)
	}
	if a.Report().Events != 0 {
		t.Fatal("fired at exactly the bound")
	}
	a.ObserveMismatch(10, true, 1) // 11th second exceeds the 10 s bound
	r := a.Report()
	if r.Warnings != 1 || r.Counts["mismatch_window"] != 1 {
		t.Fatalf("window rule wrong: %+v", r)
	}
	// A new, shorter window does not fire again.
	a.ObserveMismatch(11, false, 1)
	a.ObserveMismatch(12, true, 1)
	if a.Report().Events != 1 {
		t.Error("short window re-fired")
	}
}

func TestLedgerDriftAccumulates(t *testing.T) {
	a := NewEngine(ModeReport, Rules{LedgerDriftRel: 1e-6, DebounceSteps: 1})
	for i := 0; i < 100; i++ {
		a.ObserveLedger(float64(i), 1.0, 1.0)
	}
	if a.Report().Events != 0 {
		t.Fatal("balanced ledger fired")
	}
	a.ObserveLedger(100, 1.0, 0.5) // leak half a watt-hour
	r := a.Report()
	if r.Criticals != 1 || r.Counts["ledger_drift"] != 1 {
		t.Fatalf("drift rule wrong: %+v", r)
	}
}

func TestDoDSwingTracksRunningMax(t *testing.T) {
	a := NewEngine(ModeReport, Rules{DoDMax: 0.5, DebounceSteps: 1, SoCFloor: -1, SoCCeiling: -1})
	a.ObserveSoC(0, "b", 0.9)
	a.ObserveSoC(1, "b", 0.5) // swing 0.4: fine
	if a.Report().Events != 0 {
		t.Fatal("fired within DoD budget")
	}
	a.ObserveSoC(2, "b", 0.3) // swing 0.6 from the 0.9 top
	r := a.Report()
	if r.Counts["dod_excursion"] != 1 {
		t.Fatalf("DoD rule wrong: %+v", r)
	}
}

func TestNegativeThresholdDisablesRule(t *testing.T) {
	a := NewEngine(ModeReport, Rules{SoCFloor: -1, SoCCeiling: -1, DoDMax: -1, DebounceSteps: 1})
	for i := 0; i < 10; i++ {
		a.ObserveSoC(float64(i), "b", -5)
	}
	if got := a.Report().Events; got != 0 {
		t.Fatalf("disabled rules fired %d alerts", got)
	}
}

func TestStrictViolatedAndHealth(t *testing.T) {
	a := NewEngine(ModeStrict, Rules{DebounceSteps: 1})
	if !a.Strict() || a.Violated() {
		t.Fatal("fresh strict engine state wrong")
	}
	a.ObserveRamp(0, 1e6) // warn severity
	if a.Violated() {
		t.Fatal("warning counted as violation")
	}
	if h := a.Report().Health; h != HealthWarn {
		t.Fatalf("health %q after warning", h)
	}
	a.ObserveSoC(1, "b", -1) // critical
	if !a.Violated() {
		t.Fatal("critical not counted as violation")
	}
	if h := a.Report().Health; h != HealthCritical {
		t.Fatalf("health %q after critical", h)
	}
}

func TestTakeFiredDrains(t *testing.T) {
	a := NewEngine(ModeReport, Rules{DebounceSteps: 1})
	a.ObserveRamp(0, 1e6)
	if got := a.TakeFired(); len(got) != 1 {
		t.Fatalf("TakeFired returned %d", len(got))
	}
	if got := a.TakeFired(); got != nil {
		t.Fatalf("second TakeFired returned %d", len(got))
	}
	a.ObserveSoC(1, "b", -1)
	if got := a.TakeFired(); len(got) != 1 || got[0].Kind != KindSoCFloor {
		t.Fatalf("drain after refire wrong: %+v", got)
	}
}

func TestEventCapOverflow(t *testing.T) {
	a := NewEngine(ModeReport, Rules{DebounceSteps: 1, HysteresisSteps: 1})
	for i := 0; i < 2*(EventCap+10); i += 2 {
		a.ObserveRamp(float64(i), 1e6)
		a.ObserveRamp(float64(i+1), 0) // hysteresis 1: re-arms immediately
	}
	r := a.Report()
	if len(a.Events()) != EventCap {
		t.Fatalf("stored %d events, cap %d", len(a.Events()), EventCap)
	}
	if r.Overflow == 0 || r.Events != EventCap+r.Overflow {
		t.Fatalf("overflow accounting wrong: %+v", r)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{Seconds: 1, Kind: KindSoCFloor, Severity: SeverityCritical, Device: "battery/0", Value: 0.01, Limit: 0.05, Run: "r1"},
		{Seconds: 2, Kind: KindRampRate, Severity: SeverityWarn, Value: 900, Limit: 250, Detail: "bus ramp outside envelope", Run: "r2"},
	}
	var buf bytes.Buffer
	if err := WriteEventsJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events", len(got))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d: got %+v want %+v", i, got[i], events[i])
		}
	}
	// Unknown kinds must be rejected, not silently zeroed.
	if _, err := ReadEvents(strings.NewReader(`{"t":1,"kind":"made_up","severity":"warn"}` + "\n")); err == nil {
		t.Error("accepted unknown kind")
	}
	if _, err := ReadEvents(strings.NewReader(`{"t":1,"kind":"soc_floor","severity":"fatal"}` + "\n")); err == nil {
		t.Error("accepted unknown severity")
	}
}

func TestLogSortsByRun(t *testing.T) {
	l := NewLog()
	l.Add("z", Report{Health: HealthOK})
	l.Add("a", Report{Health: HealthCritical, Criticals: 1})
	l.Add("m", Report{Health: HealthWarn, Warnings: 1})
	rs := l.Reports()
	if len(rs) != 3 || rs[0].Run != "a" || rs[1].Run != "m" || rs[2].Run != "z" {
		t.Fatalf("reports unsorted: %+v", rs)
	}
	bad := l.Unhealthy()
	if len(bad) != 2 || bad[0].Run != "a" || bad[1].Run != "m" {
		t.Fatalf("unhealthy wrong: %+v", bad)
	}
}

func TestReportSummary(t *testing.T) {
	r := Report{Health: HealthCritical, Warnings: 2, Criticals: 1, Events: 3}
	if s := r.Summary(); !strings.Contains(s, "critical") || !strings.Contains(s, "2 warnings") {
		t.Errorf("summary %q", s)
	}
}
