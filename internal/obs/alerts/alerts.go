// Package alerts is the judgment layer of the observability stack: a
// declarative rule engine evaluated online against the simulation
// engine's live signals. Where the energy auditor (internal/obs/audit)
// checks conservation — an invariant of the *model* — the alert engine
// checks the *operational* envelope the paper promises: state-of-charge
// floors, depth-of-discharge budgets, relay exclusivity, bounded
// mismatch windows, bus-ledger integrity, battery wear rate, bus ramp
// rate and checkpoint-chain continuity.
//
// Each rule has a fixed severity (warn or critical), a debounce (how
// many consecutive violating observations arm it) and a hysteresis (how
// many clean observations re-arm it after firing), so a rule fires once
// per excursion instead of once per step. Fired alerts become typed
// events (alerts.jsonl in captures, EventAlert on the engine's event
// log) and roll up into a per-run Report whose Health verdict — ok,
// warn or critical — is stamped into the capture manifest.
//
// The package is deliberately self-contained (no internal/obs import)
// so both the sim engine and the obs capture layer can depend on it
// without a cycle.
package alerts

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// Mode selects how the alert engine participates in a run.
type Mode uint8

const (
	// ModeOff disables alerting entirely; the engine's nil-check fast
	// path allocates nothing.
	ModeOff Mode = iota
	// ModeReport evaluates every rule and records fired alerts without
	// affecting the run.
	ModeReport
	// ModeStrict additionally aborts the run at the first critical
	// alert, mirroring the auditor's strict mode.
	ModeStrict
)

// String names the mode as the -alerts flag spells it.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeReport:
		return "report"
	case ModeStrict:
		return "strict"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode inverts String.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off":
		return ModeOff, nil
	case "report":
		return ModeReport, nil
	case "strict":
		return ModeStrict, nil
	default:
		return ModeOff, fmt.Errorf("alerts: unknown alert mode %q (want off, report or strict)", s)
	}
}

// Severity ranks an alert.
type Severity uint8

const (
	// SeverityWarn marks a degradation worth surfacing.
	SeverityWarn Severity = iota
	// SeverityCritical marks a breach of a hard operational invariant.
	SeverityCritical

	numSeverities // sentinel
)

var severityNames = [numSeverities]string{"warn", "critical"}

// String names the severity as it appears in JSONL.
func (s Severity) String() string {
	if int(s) < len(severityNames) {
		return severityNames[s]
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// ParseSeverity inverts String.
func ParseSeverity(s string) (Severity, error) {
	for i, name := range severityNames {
		if name == s {
			return Severity(i), nil
		}
	}
	return 0, fmt.Errorf("alerts: unknown severity %q", s)
}

// MarshalJSON encodes the severity as its string name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON decodes a string severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	sev, err := ParseSeverity(name)
	if err != nil {
		return err
	}
	*s = sev
	return nil
}

// Kind identifies one rule family.
type Kind uint8

// The rule taxonomy. Severities are fixed per kind: structural breaks
// (empty buffer, relay fault, energy-ledger drift, broken checkpoint
// chain) are critical; envelope excursions (ceiling, DoD, mismatch
// window, wear, ramp) are warnings.
const (
	// KindSoCFloor fires when a device's state of charge stays below the
	// configured floor — the buffer is effectively empty.
	KindSoCFloor Kind = iota
	// KindSoCCeiling fires when a device's state of charge exceeds the
	// configured ceiling — an overcharge past the usable window.
	KindSoCCeiling
	// KindDoDExcursion fires when a device's discharge swing (running
	// SoC maximum minus current SoC) exceeds the design depth of
	// discharge.
	KindDoDExcursion
	// KindRelayExclusivity fires when the relay positions stop
	// partitioning the servers.
	KindRelayExclusivity
	// KindMismatchWindow fires when one contiguous demand-above-supply
	// window outlasts the configured bound.
	KindMismatchWindow
	// KindLedgerDrift fires when the cumulative bus ledger's in/out
	// drift exceeds the configured relative tolerance.
	KindLedgerDrift
	// KindWearRate fires when the battery's equivalent-full-cycle rate
	// exceeds the configured cycles-per-day budget.
	KindWearRate
	// KindRampRate fires when the bus demand ramp exceeds the
	// configured watts-per-second envelope.
	KindRampRate
	// KindCheckpointChain fires when a checkpoint record's prev hash
	// does not extend the previously observed record.
	KindCheckpointChain

	numKinds // sentinel
)

var kindNames = [numKinds]string{
	"soc_floor", "soc_ceiling", "dod_excursion", "relay_exclusivity",
	"mismatch_window", "ledger_drift", "wear_rate", "ramp_rate",
	"checkpoint_chain",
}

// kindSeverities fixes each rule family's severity.
var kindSeverities = [numKinds]Severity{
	KindSoCFloor:         SeverityCritical,
	KindSoCCeiling:       SeverityWarn,
	KindDoDExcursion:     SeverityWarn,
	KindRelayExclusivity: SeverityCritical,
	KindMismatchWindow:   SeverityWarn,
	KindLedgerDrift:      SeverityCritical,
	KindWearRate:         SeverityWarn,
	KindRampRate:         SeverityWarn,
	KindCheckpointChain:  SeverityCritical,
}

// structuralKinds fire on the first violating observation regardless of
// the configured debounce: a relay fault or a broken checkpoint chain is
// never sensor noise.
var structuralKinds = [numKinds]bool{
	KindRelayExclusivity: true,
	KindCheckpointChain:  true,
	KindWearRate:         true,
}

// NumKinds is the number of rule families (for table-driven callers).
const NumKinds = int(numKinds)

// String names the kind as it appears in JSONL.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind inverts String.
func ParseKind(s string) (Kind, error) {
	for i, name := range kindNames {
		if name == s {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("alerts: unknown alert kind %q", s)
}

// Severity returns the kind's fixed severity.
func (k Kind) Severity() Severity {
	if int(k) < len(kindSeverities) {
		return kindSeverities[k]
	}
	return SeverityWarn
}

// MarshalJSON encodes the kind as its string name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes a string kind name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	kind, err := ParseKind(s)
	if err != nil {
		return err
	}
	*k = kind
	return nil
}

// Event is one fired alert.
type Event struct {
	// Seconds is the simulation time the rule fired (debounce included).
	Seconds float64 `json:"t"`
	// Kind is the rule family.
	Kind Kind `json:"kind"`
	// Severity is the kind's fixed severity, denormalized for readers.
	Severity Severity `json:"severity"`
	// Device is the affected device ("battery/0"), empty for bus-level
	// rules.
	Device string `json:"device,omitempty"`
	// Value is the observed quantity, Limit the threshold it crossed.
	Value float64 `json:"value"`
	Limit float64 `json:"limit"`
	// Detail is free-form context.
	Detail string `json:"detail,omitempty"`
	// Run labels the originating run in multi-run artifacts.
	Run string `json:"run,omitempty"`
}

// Rules configures the thresholds. The zero value of any field selects
// its default (see DefaultRules); a negative threshold disables that
// rule entirely.
type Rules struct {
	// SoCFloor is the critical state-of-charge floor.
	SoCFloor float64
	// SoCCeiling is the overcharge ceiling.
	SoCCeiling float64
	// DoDMax bounds the discharge swing below the running SoC maximum.
	DoDMax float64
	// MismatchWindowSeconds bounds one contiguous mismatch window.
	MismatchWindowSeconds float64
	// LedgerDriftRel bounds the cumulative bus ledger's relative drift.
	LedgerDriftRel float64
	// WearEFCPerDay bounds the battery's equivalent full cycles per
	// simulated day.
	WearEFCPerDay float64
	// RampWattsPerSecond bounds the per-step bus demand ramp.
	RampWattsPerSecond float64
	// DebounceSteps is how many consecutive violating observations arm
	// a non-structural rule (structural rules fire immediately).
	DebounceSteps int
	// HysteresisSteps is how many consecutive clean observations
	// re-arm a fired rule for the next excursion.
	HysteresisSteps int
}

// DefaultRules returns the prototype's operational envelope: the
// battery must never run empty (SoC < 5%), never overcharge past the
// usable window, never swing deeper than 85% DoD, any one mismatch
// window must clear within 30 minutes (mismatch windows are the demand
// peaks the buffers are provisioned to shave, and the evaluation
// workloads' longest natural peaks run just under 20 minutes — a window
// past half an hour is sustained overload, not a peak), the bus ledger
// must hold the auditor's 1e-6 relative drift, the batteries may cycle
// at most three equivalent full cycles per day, and the bus may ramp at
// most 250 W/s.
func DefaultRules() Rules {
	return Rules{
		SoCFloor:              0.05,
		SoCCeiling:            1.0,
		DoDMax:                0.85,
		MismatchWindowSeconds: 1800,
		LedgerDriftRel:        1e-6,
		WearEFCPerDay:         3,
		RampWattsPerSecond:    250,
		DebounceSteps:         5,
		HysteresisSteps:       60,
	}
}

// withDefaults fills zero fields from DefaultRules; negative thresholds
// pass through (they disable the rule).
func (r Rules) withDefaults() Rules {
	d := DefaultRules()
	if r.SoCFloor == 0 {
		r.SoCFloor = d.SoCFloor
	}
	if r.SoCCeiling == 0 {
		r.SoCCeiling = d.SoCCeiling
	}
	if r.DoDMax == 0 {
		r.DoDMax = d.DoDMax
	}
	if r.MismatchWindowSeconds == 0 {
		r.MismatchWindowSeconds = d.MismatchWindowSeconds
	}
	if r.LedgerDriftRel == 0 {
		r.LedgerDriftRel = d.LedgerDriftRel
	}
	if r.WearEFCPerDay == 0 {
		r.WearEFCPerDay = d.WearEFCPerDay
	}
	if r.RampWattsPerSecond == 0 {
		r.RampWattsPerSecond = d.RampWattsPerSecond
	}
	if r.DebounceSteps == 0 {
		r.DebounceSteps = d.DebounceSteps
	}
	if r.HysteresisSteps == 0 {
		r.HysteresisSteps = d.HysteresisSteps
	}
	return r
}

// EventCap bounds the stored events per engine; fired alerts past the
// cap are counted but not stored, so a pathological run cannot balloon
// its capture.
const EventCap = 256

// stateKey addresses one rule instance (kind × device).
type stateKey struct {
	kind   Kind
	device string
}

// ruleState is one rule instance's debounce/hysteresis automaton.
type ruleState struct {
	over   int  // consecutive violating observations while armed
	clean  int  // consecutive clean observations while firing
	firing bool // fired and not yet re-armed
}

// socState tracks a device's running SoC maximum for DoD swings.
type socState struct {
	top  float64
	seen bool
}

// Engine evaluates the rule set online. It is used by a single run from
// a single goroutine (the sim engine's), so it needs no locking; the
// thread-safe cross-run collector is Log. A nil *Engine disables
// alerting: every method is nil-safe and the sim engine's nil checks
// keep the hot loop allocation-free.
type Engine struct {
	mode  Mode
	rules Rules

	state map[stateKey]*ruleState
	soc   map[string]*socState

	mismatchSecs float64 // current contiguous mismatch window
	ledgerIn     float64 // cumulative bus Wh in
	ledgerOut    float64 // cumulative bus Wh out
	lastCkpt     string  // last observed checkpoint hash
	haveCkpt     bool

	events   []Event // stored fired alerts, capped at EventCap
	fired    []Event // unclaimed fired alerts (drained by TakeFired)
	counts   [numKinds]int
	warns    int
	crits    int
	overflow int
}

// NewEngine builds an alert engine for the mode, or nil for ModeOff
// (the nil engine is the documented "off" state). Zero-valued rule
// fields select defaults; negative thresholds disable their rule.
func NewEngine(mode Mode, rules Rules) *Engine {
	if mode == ModeOff {
		return nil
	}
	return &Engine{
		mode:  mode,
		rules: rules.withDefaults(),
		state: map[stateKey]*ruleState{},
		soc:   map[string]*socState{},
	}
}

// Mode reports the engine's mode; a nil engine is off.
func (a *Engine) Mode() Mode {
	if a == nil {
		return ModeOff
	}
	return a.mode
}

// Strict reports whether a critical alert should abort the run.
func (a *Engine) Strict() bool { return a != nil && a.mode == ModeStrict }

// Violated reports whether any critical alert has fired.
func (a *Engine) Violated() bool { return a != nil && a.crits > 0 }

// Rules returns the effective (default-filled) rule set.
func (a *Engine) Rules() Rules {
	if a == nil {
		return Rules{}
	}
	return a.rules
}

// observe runs one rule instance's debounce/hysteresis automaton and
// fires at the arming threshold.
func (a *Engine) observe(t float64, k Kind, device string, violating bool, value, limit float64, detail string) {
	key := stateKey{kind: k, device: device}
	st := a.state[key]
	if st == nil {
		st = &ruleState{}
		a.state[key] = st
	}
	switch {
	case violating && st.firing:
		st.clean = 0
	case violating:
		st.clean = 0
		st.over++
		arm := a.rules.DebounceSteps
		if structuralKinds[k] {
			arm = 1
		}
		if st.over >= arm {
			st.firing = true
			st.over = 0
			a.fire(Event{
				Seconds: t, Kind: k, Severity: k.Severity(),
				Device: device, Value: value, Limit: limit, Detail: detail,
			})
		}
	case st.firing:
		st.clean++
		if st.clean >= a.rules.HysteresisSteps {
			st.firing, st.over, st.clean = false, 0, 0
		}
	default:
		st.over = 0
	}
}

// fire records one alert.
func (a *Engine) fire(e Event) {
	a.counts[e.Kind]++
	if e.Severity == SeverityCritical {
		a.crits++
	} else {
		a.warns++
	}
	if len(a.events) < EventCap {
		a.events = append(a.events, e)
	} else {
		a.overflow++
	}
	a.fired = append(a.fired, e)
}

// ObserveSoC feeds one device's state of charge; it drives the SoC
// floor, SoC ceiling and DoD excursion rules.
func (a *Engine) ObserveSoC(t float64, device string, soc float64) {
	if a == nil {
		return
	}
	r := a.rules
	if r.SoCFloor >= 0 {
		a.observe(t, KindSoCFloor, device, soc < r.SoCFloor, soc, r.SoCFloor,
			"state of charge below floor")
	}
	if r.SoCCeiling >= 0 {
		a.observe(t, KindSoCCeiling, device, soc > r.SoCCeiling, soc, r.SoCCeiling,
			"state of charge above ceiling")
	}
	if r.DoDMax >= 0 {
		ss := a.soc[device]
		if ss == nil {
			ss = &socState{}
			a.soc[device] = ss
		}
		if !ss.seen || soc > ss.top {
			ss.top, ss.seen = soc, true
		}
		depth := ss.top - soc
		a.observe(t, KindDoDExcursion, device, depth > r.DoDMax, depth, r.DoDMax,
			"discharge swing beyond design DoD")
	}
}

// ObserveMismatch feeds the step's mismatch state; it drives the
// mismatch-window rule by timing contiguous windows.
func (a *Engine) ObserveMismatch(t float64, inMismatch bool, stepSeconds float64) {
	if a == nil || a.rules.MismatchWindowSeconds < 0 {
		return
	}
	if inMismatch {
		a.mismatchSecs += stepSeconds
	} else {
		a.mismatchSecs = 0
	}
	a.observe(t, KindMismatchWindow, "", a.mismatchSecs > a.rules.MismatchWindowSeconds,
		a.mismatchSecs, a.rules.MismatchWindowSeconds, "mismatch window outlasted bound")
}

// ObserveLedger feeds the step's bus ledger (Wh in and out of the bus
// boundary); it drives the ledger-drift rule on the cumulative sums.
func (a *Engine) ObserveLedger(t float64, inWh, outWh float64) {
	if a == nil || a.rules.LedgerDriftRel < 0 {
		return
	}
	a.ledgerIn += inWh
	a.ledgerOut += outWh
	drift := math.Abs(a.ledgerIn - a.ledgerOut)
	scale := math.Max(math.Max(a.ledgerIn, a.ledgerOut), 1)
	rel := drift / scale
	a.observe(t, KindLedgerDrift, "", rel > a.rules.LedgerDriftRel && drift > 1e-9,
		rel, a.rules.LedgerDriftRel, "cumulative bus ledger drift")
}

// ObserveRamp feeds the step's absolute bus demand ramp in watts per
// second; it drives the ramp-rate envelope rule.
func (a *Engine) ObserveRamp(t float64, wattsPerSecond float64) {
	if a == nil || a.rules.RampWattsPerSecond < 0 {
		return
	}
	a.observe(t, KindRampRate, "", wattsPerSecond > a.rules.RampWattsPerSecond,
		wattsPerSecond, a.rules.RampWattsPerSecond, "bus ramp outside envelope")
}

// ObserveRelays feeds the step's relay partition check.
func (a *Engine) ObserveRelays(t float64, exclusive bool, total, servers int) {
	if a == nil {
		return
	}
	a.observe(t, KindRelayExclusivity, "", !exclusive, float64(total), float64(servers),
		"relay positions do not partition the servers")
}

// ObserveWear feeds a device's equivalent-full-cycle rate (cycles per
// simulated day), typically once at end of run.
func (a *Engine) ObserveWear(t float64, device string, efcPerDay float64) {
	if a == nil || a.rules.WearEFCPerDay < 0 {
		return
	}
	a.observe(t, KindWearRate, device, efcPerDay > a.rules.WearEFCPerDay,
		efcPerDay, a.rules.WearEFCPerDay, "battery wear rate above budget")
}

// ObserveCheckpoint feeds each checkpoint record's chain links; it
// fires when a record does not extend the previously observed one.
func (a *Engine) ObserveCheckpoint(t float64, prev, hash string) {
	if a == nil {
		return
	}
	if a.haveCkpt {
		a.observe(t, KindCheckpointChain, "", prev != a.lastCkpt, 0, 0,
			"checkpoint does not extend the recorded chain")
	}
	a.lastCkpt, a.haveCkpt = hash, true
}

// TakeFired drains the alerts fired since the previous call — the sim
// engine's bridge onto its event log.
func (a *Engine) TakeFired() []Event {
	if a == nil || len(a.fired) == 0 {
		return nil
	}
	f := a.fired
	a.fired = nil
	return f
}

// Events returns the stored fired alerts (capped; see Report.Overflow).
func (a *Engine) Events() []Event {
	if a == nil {
		return nil
	}
	return append([]Event(nil), a.events...)
}

// Health verdicts.
const (
	HealthOK       = "ok"
	HealthWarn     = "warn"
	HealthCritical = "critical"
)

// HealthFor derives the verdict from fired counts.
func HealthFor(warnings, criticals int) string {
	switch {
	case criticals > 0:
		return HealthCritical
	case warnings > 0:
		return HealthWarn
	default:
		return HealthOK
	}
}

// Report is one run's alert summary.
type Report struct {
	// Mode is the engine mode the run used.
	Mode string `json:"mode"`
	// Events counts every fired alert (stored or overflowed).
	Events int `json:"events"`
	// Overflow counts fired alerts past the storage cap.
	Overflow int `json:"overflow,omitempty"`
	// Warnings and Criticals split the fired alerts by severity.
	Warnings  int `json:"warnings"`
	Criticals int `json:"criticals"`
	// Counts breaks fired alerts down by rule kind (non-zero only).
	Counts map[string]int `json:"counts,omitempty"`
	// Health is the verdict: ok, warn or critical.
	Health string `json:"health"`
	// Run labels the originating run in multi-run collectors.
	Run string `json:"run,omitempty"`
}

// Report summarizes the engine's firing state.
func (a *Engine) Report() Report {
	if a == nil {
		return Report{Mode: ModeOff.String(), Health: HealthOK}
	}
	r := Report{
		Mode:      a.mode.String(),
		Events:    a.warns + a.crits,
		Overflow:  a.overflow,
		Warnings:  a.warns,
		Criticals: a.crits,
		Health:    HealthFor(a.warns, a.crits),
	}
	for k, n := range a.counts {
		if n > 0 {
			if r.Counts == nil {
				r.Counts = map[string]int{}
			}
			r.Counts[Kind(k).String()] = n
		}
	}
	return r
}

// Summary renders the report one-line.
func (r Report) Summary() string {
	return fmt.Sprintf("health=%s: %d warnings, %d criticals over %d fired alerts",
		r.Health, r.Warnings, r.Criticals, r.Events)
}

// Log collects per-run reports from a (possibly parallel) sweep. It is
// safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	reports []Report
}

// NewLog builds an empty collector.
func NewLog() *Log { return &Log{} }

// Add records one run's report under its key.
func (l *Log) Add(run string, r Report) {
	r.Run = run
	l.mu.Lock()
	l.reports = append(l.reports, r)
	l.mu.Unlock()
}

// Reports returns every report sorted by run key (deterministic for any
// worker count).
func (l *Log) Reports() []Report {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := append([]Report(nil), l.reports...)
	sort.Slice(out, func(i, j int) bool { return out[i].Run < out[j].Run })
	return out
}

// Unhealthy returns the reports whose verdict is not ok, sorted by run.
func (l *Log) Unhealthy() []Report {
	var bad []Report
	for _, r := range l.Reports() {
		if r.Health != HealthOK {
			bad = append(bad, r)
		}
	}
	return bad
}

// WriteEventsJSONL writes alert events one JSON object per line.
func WriteEventsJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEvents parses a JSONL stream written by WriteEventsJSONL,
// validating every kind and severity name.
func ReadEvents(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("alerts: line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}
