package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// FieldDiff is one leaf where two JSON documents disagree. It is the
// exchange format of the structural differ shared by cmd/hebbisect (which
// diffs checkpoint states) and the run registry's compare endpoint (which
// diffs run summaries).
type FieldDiff struct {
	// Path is the JSONPath-style location of the leaf ("$.a.b[2]").
	Path string `json:"path"`
	// A and B are the differing leaf values (containers are summarized).
	A any `json:"a"`
	B any `json:"b"`
}

// DiffJSON decodes two JSON payloads and walks them structurally,
// returning every differing leaf in path order. Numbers compare within
// tol (absolute or relative, whichever is looser; 0 demands exactness —
// the right default for a deterministic simulator); field names in ignore
// are skipped at any depth.
func DiffJSON(a, b json.RawMessage, tol float64, ignore map[string]bool) []FieldDiff {
	var va, vb any
	if err := json.Unmarshal(a, &va); err != nil {
		return []FieldDiff{{Path: "$", A: "<undecodable>", B: string(b)}}
	}
	if err := json.Unmarshal(b, &vb); err != nil {
		return []FieldDiff{{Path: "$", A: string(a), B: "<undecodable>"}}
	}
	var out []FieldDiff
	diffValue("$", va, vb, tol, ignore, &out)
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

func diffValue(path string, a, b any, tol float64, ignore map[string]bool, out *[]FieldDiff) {
	switch av := a.(type) {
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok {
			*out = append(*out, FieldDiff{path, describeLeaf(a), describeLeaf(b)})
			return
		}
		keys := make(map[string]bool, len(av)+len(bv))
		for k := range av {
			keys[k] = true
		}
		for k := range bv {
			keys[k] = true
		}
		ordered := make([]string, 0, len(keys))
		for k := range keys {
			ordered = append(ordered, k)
		}
		sort.Strings(ordered)
		for _, k := range ordered {
			if ignore[k] {
				continue
			}
			sub := path + "." + k
			ea, inA := av[k]
			eb, inB := bv[k]
			switch {
			case !inA:
				*out = append(*out, FieldDiff{sub, "<absent>", describeLeaf(eb)})
			case !inB:
				*out = append(*out, FieldDiff{sub, describeLeaf(ea), "<absent>"})
			default:
				diffValue(sub, ea, eb, tol, ignore, out)
			}
		}
	case []any:
		bv, ok := b.([]any)
		if !ok {
			*out = append(*out, FieldDiff{path, describeLeaf(a), describeLeaf(b)})
			return
		}
		n := len(av)
		if len(bv) < n {
			n = len(bv)
		}
		for i := 0; i < n; i++ {
			diffValue(fmt.Sprintf("%s[%d]", path, i), av[i], bv[i], tol, ignore, out)
		}
		if len(av) != len(bv) {
			*out = append(*out, FieldDiff{path + ".len", len(av), len(bv)})
		}
	case float64:
		bv, ok := b.(float64)
		if !ok {
			*out = append(*out, FieldDiff{path, describeLeaf(a), describeLeaf(b)})
			return
		}
		if !floatsClose(av, bv, tol) {
			*out = append(*out, FieldDiff{path, av, bv})
		}
	default:
		// strings, bools, nils: exact.
		if a != b {
			*out = append(*out, FieldDiff{path, describeLeaf(a), describeLeaf(b)})
		}
	}
}

// floatsClose is true within tol absolutely or relative to the larger
// magnitude.
func floatsClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// describeLeaf renders a leaf for a report without dumping huge subtrees.
func describeLeaf(v any) any {
	switch tv := v.(type) {
	case nil:
		return "<null>"
	case map[string]any:
		return fmt.Sprintf("<object, %d keys>", len(tv))
	case []any:
		return fmt.Sprintf("<array, %d elems>", len(tv))
	default:
		return v
	}
}
