package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"heb/internal/obs/alerts"
)

// ManifestVersion is the schema version stamped into every manifest; a
// reader that sees a higher version must refuse to interpret it.
const ManifestVersion = 1

// ManifestName is the manifest's file name inside a capture directory.
const ManifestName = "manifest.json"

// Capture lifecycle statuses recorded in a manifest. A capture is
// "running" from the moment its directory is opened for writing,
// "complete" once WriteFiles lands the full artifact set, "failed" when
// the producing process reported an error, and "killed" when a later
// process found the manifest still "running" (the writer died — the
// flight-recorder resume path performs exactly this transition before it
// takes over).
const (
	StatusRunning  = "running"
	StatusComplete = "complete"
	StatusFailed   = "failed"
	StatusKilled   = "killed"
)

// Manifest indexes one capture directory: its lifecycle status, the runs
// that contributed, and the artifact inventory. It is written atomically
// (temp file + rename) so readers never observe a torn manifest, and its
// content depends only on the contributed artifacts — never on worker
// scheduling or wall-clock time — so manifests are byte-identical for any
// -workers.
type Manifest struct {
	// V is the schema version (ManifestVersion).
	V int `json:"v"`
	// Status is the capture lifecycle status (Status* constants).
	Status string `json:"status"`
	// Label names the producing sweep or experiment ("all", "run", ...).
	Label string `json:"label,omitempty"`
	// Runs indexes the contributing runs in capture output order.
	Runs []RunManifest `json:"runs,omitempty"`
	// Artifacts inventories the capture-owned files (events.jsonl,
	// decisions.jsonl, metrics.prom and the optional deep artifacts) with
	// sizes and content fingerprints. The manifest itself is excluded.
	Artifacts []ArtifactInfo `json:"artifacts,omitempty"`
	// Profiles inventories the capture's pprof artifacts
	// (profiles/*.pb.gz). Profiles measure wall-clock behaviour and are
	// inherently non-deterministic, so they live outside Artifacts: the
	// byte-identity contract covers the manifest *minus this section*,
	// and obscheck/flight-recorder comparisons strip it before diffing.
	Profiles []ArtifactInfo `json:"profiles,omitempty"`
}

// RunManifest is one run's row in the capture index.
type RunManifest struct {
	// ID is a stable short identifier derived from the run key and the
	// artifact content fingerprint; it is what the registry and the hebmon
	// /api/runs endpoints address runs by.
	ID string `json:"id"`
	// Key is the full configuration run key (heb.Prototype.runKey form).
	Key string `json:"key"`
	// Scheme, Workload, DurationSeconds and Seed are parsed out of the
	// key's readable prefix for filtering without string surgery.
	Scheme          string  `json:"scheme"`
	Workload        string  `json:"workload"`
	DurationSeconds float64 `json:"duration_s"`
	Seed            int64   `json:"seed"`
	// ConfigHash is the key's trailing cfg= configuration hash.
	ConfigHash string `json:"config_hash,omitempty"`
	// Status is the run lifecycle status; contributed runs are always
	// complete (a run that dies never reaches its capture — the capture's
	// own status records the kill).
	Status string `json:"status"`
	// Fingerprint condenses the run's full artifact content; two runs of
	// the same configuration producing identical behaviour share it.
	Fingerprint string `json:"fingerprint"`
	// Bytes is the run's share of the JSONL artifact payload.
	Bytes int64 `json:"bytes"`
	// Summary carries the run's headline counters and metrics.
	Summary RunSummary `json:"summary"`
	// Checkpoints counts the run's flight-recorder records and
	// CheckpointHead is the chain head hash (empty when not recorded).
	Checkpoints    int    `json:"checkpoints,omitempty"`
	CheckpointHead string `json:"checkpoint_head,omitempty"`
}

// RunSummary is the deterministic per-run summary embedded in a manifest.
type RunSummary struct {
	Steps         int64 `json:"steps"`
	MismatchSteps int64 `json:"mismatch_steps"`
	Slots         int64 `json:"slots"`
	Events        int   `json:"events"`
	EventsDropped int   `json:"events_dropped,omitempty"`
	Decisions     int   `json:"decisions"`
	Probes        int   `json:"probes,omitempty"`
	RelaySwitches int64 `json:"relay_switches"`
	PATLookups    int64 `json:"pat_lookups,omitempty"`
	PATMisses     int64 `json:"pat_misses,omitempty"`
	// AuditPassed is nil when the run was not audited.
	AuditPassed *bool `json:"audit_passed,omitempty"`
	// Health is the alert engine's per-run verdict (ok, warn or
	// critical), empty when the rule engine was off; AlertWarnings and
	// AlertCriticals split its fired alerts by severity.
	Health         string `json:"health,omitempty"`
	AlertWarnings  int    `json:"alert_warnings,omitempty"`
	AlertCriticals int    `json:"alert_criticals,omitempty"`
	// Metrics carries the run's headline result scalars (energy
	// efficiency, downtime, battery lifetime, ...). encoding/json sorts
	// map keys, so the serialized form stays deterministic.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// ArtifactInfo is one file of the capture's inventory.
type ArtifactInfo struct {
	Name   string `json:"name"`
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
}

// RunID derives the stable short run identifier from a run key and its
// content fingerprint: 12 hex characters of SHA-256, collision-resistant
// enough for any realistic sweep while staying URL-friendly.
func RunID(key, fingerprint string) string {
	sum := sha256.Sum256([]byte(key + "\x00" + fingerprint))
	return hex.EncodeToString(sum[:6])
}

// parseRunKey extracts the readable fields of a heb run key
// ("Scheme|Workload|Duration|seed=N|...|cfg=HASH"); missing or malformed
// fields stay zero — the key itself remains authoritative.
func parseRunKey(key string) (scheme, workload string, durationS float64, seed int64, cfgHash string) {
	parts := strings.Split(key, "|")
	if len(parts) > 0 {
		scheme = parts[0]
	}
	if len(parts) > 1 {
		workload = parts[1]
	}
	if len(parts) > 2 {
		if d, err := time.ParseDuration(parts[2]); err == nil {
			durationS = d.Seconds()
		}
	}
	for _, p := range parts[3:] {
		if v, ok := strings.CutPrefix(p, "seed="); ok {
			if n, err := strconv.ParseInt(v, 10, 64); err == nil {
				seed = n
			}
		} else if v, ok := strings.CutPrefix(p, "cfg="); ok {
			cfgHash = v
		}
	}
	return scheme, workload, durationS, seed, cfgHash
}

// countingWriter measures the bytes a JSONL writer produces without
// keeping them.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// runManifest builds one run's index row from its contributed artifact.
func runManifest(a RunArtifact, fingerprint string) RunManifest {
	scheme, workload, durationS, seed, cfgHash := parseRunKey(a.Key)
	fp := sha256.Sum256([]byte(fingerprint))
	rm := RunManifest{
		Key:             a.Key,
		Scheme:          scheme,
		Workload:        workload,
		DurationSeconds: durationS,
		Seed:            seed,
		ConfigHash:      cfgHash,
		Status:          StatusComplete,
		Fingerprint:     hex.EncodeToString(fp[:6]),
		Summary: RunSummary{
			Steps:         a.Steps,
			MismatchSteps: a.MismatchSteps,
			Slots:         a.Slots,
			Events:        len(a.Events),
			EventsDropped: a.EventsDropped,
			Decisions:     len(a.Decisions),
			Probes:        len(a.Probes),
			PATLookups:    a.PATLookups,
			PATMisses:     a.PATMisses,
		},
	}
	rm.ID = RunID(a.Key, fingerprint)
	for _, n := range a.RelaySwitches {
		rm.Summary.RelaySwitches += n
	}
	if len(a.Metrics) > 0 {
		m := make(map[string]float64, len(a.Metrics))
		for k, v := range a.Metrics {
			m[k] = v
		}
		rm.Summary.Metrics = m
	}
	if a.Audit != nil {
		passed := a.Audit.Passed
		rm.Summary.AuditPassed = &passed
	}
	if a.Alerts != nil {
		rm.Summary.Health = a.Alerts.Health
		rm.Summary.AlertWarnings = a.Alerts.Warnings
		rm.Summary.AlertCriticals = a.Alerts.Criticals
	}
	if n := len(a.Checkpoints); n > 0 {
		rm.Checkpoints = n
		rm.CheckpointHead = a.Checkpoints[n-1].Hash
	}
	// The run's byte share is what its slice of each JSONL artifact
	// serializes to; metrics.prom is aggregate and not attributable.
	var cw countingWriter
	_ = WriteEventsJSONL(&cw, a.Events)
	_ = WriteDecisionsJSONL(&cw, a.Decisions)
	_ = WriteProbesJSONL(&cw, a.Probes)
	_ = WriteCheckpointsJSONL(&cw, a.Checkpoints)
	if a.Audit != nil {
		_ = WriteAuditsJSONL(&cw, []AuditReport{*a.Audit})
	}
	_ = alerts.WriteEventsJSONL(&cw, a.AlertEvents)
	rm.Bytes = cw.n
	return rm
}

// BuildManifest renders the capture's run index (status complete, no
// artifact inventory — WriteFiles attaches that after the files land).
// Output order matches Runs(), so the manifest is deterministic for any
// worker count.
func (c *Capture) BuildManifest() Manifest {
	runs := c.Runs()
	m := Manifest{V: ManifestVersion, Status: StatusComplete, Label: c.Label()}
	for _, a := range runs {
		m.Runs = append(m.Runs, runManifest(a, artifactFingerprint(a)))
	}
	return m
}

// WriteManifest atomically writes m as dir/manifest.json: the bytes land
// in a temp file first and are renamed into place, so a concurrent reader
// sees either the old manifest or the new one, never a prefix.
func WriteManifest(dir string, m Manifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("obs: manifest dir: %w", err)
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal manifest: %w", err)
	}
	raw = append(raw, '\n')
	tmp, err := os.CreateTemp(dir, ".manifest-*.tmp")
	if err != nil {
		return fmt.Errorf("obs: manifest temp: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("obs: close manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, ManifestName)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("obs: install manifest: %w", err)
	}
	return nil
}

// ReadManifest loads dir/manifest.json.
func ReadManifest(dir string) (Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return Manifest{}, fmt.Errorf("obs: parse %s: %w", ManifestName, err)
	}
	if m.V > ManifestVersion {
		return Manifest{}, fmt.Errorf("obs: manifest version %d newer than supported %d", m.V, ManifestVersion)
	}
	return m, nil
}

// StartManifest marks dir as an in-flight capture: a minimal manifest
// with status running (creating the directory if needed). Call it when a
// capture begins so a killed process leaves a detectable "running"
// manifest behind.
func StartManifest(dir, label string) error {
	return WriteManifest(dir, Manifest{V: ManifestVersion, Status: StatusRunning, Label: label})
}

// SetManifestStatus rewrites only the lifecycle status of an existing
// manifest, preserving everything else. The canonical use is the resume
// path marking a still-"running" manifest as killed before taking over.
func SetManifestStatus(dir, status string) error {
	m, err := ReadManifest(dir)
	if err != nil {
		return err
	}
	m.Status = status
	return WriteManifest(dir, m)
}

// AttachProfiles scans dir/profiles for pprof artifacts and rewrites the
// manifest with their inventory in the Profiles section (sorted by name).
// A capture without profiles is left untouched. Call it after WriteFiles:
// the deterministic sections are already final, and profile hashes only
// ever land in the separate wall-clock inventory.
func AttachProfiles(dir string) error {
	entries, err := os.ReadDir(filepath.Join(dir, "profiles"))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("obs: scan profiles: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".pb.gz") {
			names = append(names, filepath.Join("profiles", e.Name()))
		}
	}
	if len(names) == 0 {
		return nil
	}
	sort.Strings(names)
	inv, err := inventory(dir, names)
	if err != nil {
		return err
	}
	m, err := ReadManifest(dir)
	if err != nil {
		return err
	}
	m.Profiles = inv
	return WriteManifest(dir, m)
}

// inventory fingerprints the named files in dir (sizes + SHA-256),
// skipping absent ones.
func inventory(dir string, names []string) ([]ArtifactInfo, error) {
	var out []ArtifactInfo
	for _, name := range names {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("obs: inventory %s: %w", name, err)
		}
		sum := sha256.Sum256(raw)
		out = append(out, ArtifactInfo{Name: name, Bytes: int64(len(raw)), SHA256: hex.EncodeToString(sum[:])})
	}
	return out, nil
}
