package obs

import (
	"bytes"
	"testing"
)

func TestEventKindRoundTrip(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		got, err := ParseEventKind(k.String())
		if err != nil {
			t.Fatalf("ParseEventKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("round trip %v → %v", k, got)
		}
	}
	if _, err := ParseEventKind("bogus"); err == nil {
		t.Fatal("ParseEventKind accepted an unknown kind")
	}
}

func TestLogQueries(t *testing.T) {
	l := NewLog(0)
	l.Emit(Event{Seconds: 1, Kind: EventShed, Server: 3})
	l.Emit(Event{Seconds: 2, Kind: EventRestore, Server: 3})
	l.Emit(Event{Seconds: 5, Kind: EventShed, Server: 7})
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3", l.Len())
	}
	if got := l.ByKind(EventShed); len(got) != 2 || got[1].Server != 7 {
		t.Fatalf("ByKind(shed) = %+v", got)
	}
	if got := l.Between(1.5, 5); len(got) != 1 || got[0].Kind != EventRestore {
		t.Fatalf("Between(1.5,5) = %+v", got)
	}
	counts := l.CountByKind()
	if counts[EventShed] != 2 || counts[EventRestore] != 1 {
		t.Fatalf("CountByKind = %v", counts)
	}
}

func TestLogCapDropsAndCounts(t *testing.T) {
	l := NewLog(2)
	for i := 0; i < 5; i++ {
		l.Emit(Event{Seconds: float64(i), Kind: EventShed})
	}
	if l.Len() != 2 {
		t.Fatalf("len = %d, want 2", l.Len())
	}
	if l.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", l.Dropped())
	}
}

func TestEventsJSONLRoundTrip(t *testing.T) {
	in := []Event{
		{Seconds: 0, Kind: EventRunStart, Server: -1, Detail: "HEB-D"},
		{Seconds: 12, Kind: EventHandoff, Server: 4, From: "battery", To: "supercap"},
		{Seconds: 30, Kind: EventMismatchBegin, Server: -1, Watts: 812.5},
	}
	var buf bytes.Buffer
	if err := WriteEventsJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("event %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	if _, err := ReadEvents(bytes.NewBufferString("{not json\n")); err == nil {
		t.Fatal("ReadEvents accepted garbage")
	}
}

func TestMultiSink(t *testing.T) {
	if MultiSink(nil, nil) != nil {
		t.Fatal("all-nil MultiSink should collapse to nil")
	}
	a := NewLog(0)
	if got := MultiSink(nil, a); got != EventSink(a) {
		t.Fatal("single live sink should be returned unwrapped")
	}
	b := NewLog(0)
	m := MultiSink(a, b)
	m.Emit(Event{Kind: EventShed})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out failed: a=%d b=%d", a.Len(), b.Len())
	}
}
