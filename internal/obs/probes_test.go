package obs

import (
	"bytes"
	"testing"
)

func TestProbeRecorderPowerDerivative(t *testing.T) {
	r := NewProbeRecorder(0)
	r.Record("battery/0", 0, 0.5, 24, 1, 1, 0, 0)
	r.Record("battery/0", 60, 0.49, 23.9, 0.9, 1, 0.1, 2) // +2 Wh net out over 60 s
	r.Record("battery/0", 120, 0.5, 24, 1, 1, 0.1, 1)     // −1 Wh (charged) over 60 s

	s := r.DeviceSamples("battery/0")
	if len(s) != 3 {
		t.Fatalf("got %d samples, want 3", len(s))
	}
	if s[0].PowerW != 0 {
		t.Errorf("first sample power %g, want 0 (unprimed)", s[0].PowerW)
	}
	// 2 Wh over 60 s = 120 W discharging.
	if got := s[1].PowerW; got != 120 {
		t.Errorf("discharge power %g, want 120", got)
	}
	// −1 Wh over 60 s = −60 W (charging).
	if got := s[2].PowerW; got != -60 {
		t.Errorf("charge power %g, want -60", got)
	}
}

func TestProbeRingWrapKeepsNewest(t *testing.T) {
	r := NewProbeRecorder(4)
	for i := 0; i < 7; i++ {
		r.Record("sc/0", float64(i), 0.5, 12, 1, 0, 0, 0)
	}
	if got := r.Dropped(); got != 3 {
		t.Fatalf("dropped %d, want 3", got)
	}
	s := r.DeviceSamples("sc/0")
	if len(s) != 4 {
		t.Fatalf("retained %d samples, want 4", len(s))
	}
	for i, want := range []float64{3, 4, 5, 6} {
		if s[i].Seconds != want {
			t.Errorf("sample %d at t=%g, want %g", i, s[i].Seconds, want)
		}
	}
}

func TestProbeDevicesPreserveRegistrationOrder(t *testing.T) {
	r := NewProbeRecorder(0)
	for _, d := range []string{"battery/1", "battery/0", "sc/0"} {
		r.Record(d, 0, 0.5, 12, 1, 0, 0, 0)
	}
	got := r.Devices()
	want := []string{"battery/1", "battery/0", "sc/0"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("devices %v, want %v", got, want)
		}
	}
	// Samples interleave by device in the same registration order.
	all := r.Samples()
	if len(all) != 3 || all[0].Device != "battery/1" || all[2].Device != "sc/0" {
		t.Errorf("merged samples out of order: %+v", all)
	}
}

func TestProbesJSONLRoundTrip(t *testing.T) {
	r := NewProbeRecorder(0)
	r.Record("battery/0", 0, 0.55, 24.7, 0.49, 0.91, 0, 0)
	r.Record("battery/0", 60, 0.553, 24.71, 0.5, 0.91, 0.01, -0.14)
	in := r.Samples()
	in[0].Run = "test-run"

	var buf bytes.Buffer
	if err := WriteProbesJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadProbes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip lost samples: %d -> %d", len(in), len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("sample %d changed in round-trip:\n%+v\n%+v", i, in[i], out[i])
		}
	}
}
