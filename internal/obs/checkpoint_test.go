package obs

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"heb/internal/pat"
)

// TestKeyframeCadence pins the delta schedule: chain index 0 is always a
// keyframe, every index divisible by the cadence is a keyframe, and a
// cadence of 1 (or less) disables deltas entirely.
func TestKeyframeCadence(t *testing.T) {
	l := NewCheckpointLog()
	for i := 0; i < 20; i++ {
		wantDelta := i%8 != 0
		if got := l.NextIsDelta(8); got != wantDelta {
			t.Errorf("record %d: NextIsDelta(8) = %v, want %v", i, got, wantDelta)
		}
		if l.NextIsDelta(1) {
			t.Errorf("record %d: NextIsDelta(1) must always be false", i)
		}
		l.Append(i, i*600, float64(i*600), json.RawMessage(`{}`), wantDelta)
	}
}

// TestSeededLogContinuesCadence checks the resume property the engine
// relies on: a log seeded with an interrupted run's records continues the
// exact keyframe/delta sequence an uninterrupted run would have produced.
func TestSeededLogContinuesCadence(t *testing.T) {
	full := NewCheckpointLog()
	var fullDeltas []bool
	for i := 0; i < 12; i++ {
		d := full.NextIsDelta(8)
		fullDeltas = append(fullDeltas, d)
		full.Append(i, i*600, float64(i*600), json.RawMessage(`{}`), d)
	}

	// Interrupt after 5 records, seed a new log with them, keep going.
	resumed := NewCheckpointLog()
	resumed.Seed(full.Records()[:5])
	for i := 5; i < 12; i++ {
		if got := resumed.NextIsDelta(8); got != fullDeltas[i] {
			t.Fatalf("record %d: resumed cadence %v, want %v", i, got, fullDeltas[i])
		}
		resumed.Append(i, i*600, float64(i*600), json.RawMessage(`{}`), fullDeltas[i])
	}
	if !reflect.DeepEqual(resumed.Records(), full.Records()) {
		t.Fatal("resumed chain differs from uninterrupted chain")
	}
}

// deltaChain builds a 3-record chain — keyframe, then two deltas — whose
// state documents exercise every splice rule: array splices with @base
// offsets, nested-object recursion, wholesale replacement, and key drops.
func deltaChain(t *testing.T) []CheckpointRecord {
	t.Helper()
	l := NewCheckpointLog()
	l.Append(0, 0, 0, json.RawMessage(
		`{"series":[1,2],"nested":{"inner":[10],"scalar":"a"},"gone":true,"x":1}`), false)
	l.Append(1, 600, 600, json.RawMessage(
		`{"series":[3],"series@base":2,"nested":{"inner":[20],"inner@base":1,"scalar":"b"},"x":2}`), true)
	l.Append(2, 1200, 1200, json.RawMessage(
		`{"series":[4,5],"series@base":3,"nested":{"inner":[],"inner@base":2,"scalar":"c"},"x":3}`), true)
	return l.Records()
}

// TestMaterializeAtSplicesDeltas checks full reconstruction through a
// delta chain: series grow by suffix, nested series recurse, scalars
// replace, and keys absent from a delta are dropped.
func TestMaterializeAtSplicesDeltas(t *testing.T) {
	records := deltaChain(t)
	if err := ValidateCheckpoints(records); err != nil {
		t.Fatal(err)
	}

	// Keyframes come back byte-identical.
	state, err := MaterializeAt(records, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(state) != string(records[0].State) {
		t.Fatalf("keyframe state not byte-identical: %s", state)
	}

	for i, want := range []map[string]any{
		nil, // index 0 checked above
		{
			"series": []any{1.0, 2.0, 3.0},
			"nested": map[string]any{"inner": []any{10.0, 20.0}, "scalar": "b"},
			"x":      2.0,
		},
		{
			"series": []any{1.0, 2.0, 3.0, 4.0, 5.0},
			"nested": map[string]any{"inner": []any{10.0, 20.0}, "scalar": "c"},
			"x":      3.0,
		},
	} {
		if want == nil {
			continue
		}
		raw, err := MaterializeAt(records, i)
		if err != nil {
			t.Fatalf("materialize %d: %v", i, err)
		}
		var got map[string]any
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("materialize %d:\n got %v\nwant %v", i, got, want)
		}
		if _, ok := got["gone"]; ok {
			t.Errorf("materialize %d: key absent from delta survived", i)
		}
	}
}

// TestMaterializeKeyedMerge checks the @mergekey/@drop splice through a
// full chain: dropped identities leave (order preserved), upserts of a
// known identity replace in place, and new identities append in delta
// order. The merge key is a struct-valued field, the shape the PAT's
// TablePatch emits.
func TestMaterializeKeyedMerge(t *testing.T) {
	l := NewCheckpointLog()
	l.Append(0, 0, 0, json.RawMessage(
		`{"entries":[{"Key":{"A":1},"V":1},{"Key":{"A":2},"V":2},{"Key":{"A":3},"V":3}],"x":1}`), false)
	l.Append(1, 600, 600, json.RawMessage(
		`{"entries":[{"Key":{"A":2},"V":22},{"Key":{"A":4},"V":4}],`+
			`"entries@mergekey":"Key","entries@drop":[{"A":3}],"x":2}`), true)
	records := l.Records()
	if err := ValidateCheckpoints(records); err != nil {
		t.Fatal(err)
	}
	raw, err := MaterializeAt(records, 1)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	want := []any{
		map[string]any{"Key": map[string]any{"A": 1.0}, "V": 1.0},
		map[string]any{"Key": map[string]any{"A": 2.0}, "V": 22.0},
		map[string]any{"Key": map[string]any{"A": 4.0}, "V": 4.0},
	}
	if !reflect.DeepEqual(got["entries"], want) {
		t.Fatalf("keyed merge:\n got %v\nwant %v", got["entries"], want)
	}
	if _, ok := got["entries@mergekey"]; ok {
		t.Fatal("companion key materialized into the state document")
	}
}

// TestMaterializePATPatch is the cross-package contract test: a real
// pat.Table's CheckpointPatch, spliced against the keyframe's full
// TableState, must materialize back into a document TableState
// unmarshals and Restore accepts — ending in exactly the live table.
func TestMaterializePATPatch(t *testing.T) {
	tab := pat.MustNew(pat.DefaultConfig())
	tab.Add(0.1, 0.9, 10, 0.4)
	tab.Add(0.5, 0.5, 50, 0.5)
	tab.TrackChanges()

	key, err := json.Marshal(map[string]any{"pat": tab.Checkpoint()})
	if err != nil {
		t.Fatal(err)
	}
	tab.MarkCheckpointed()
	tab.Update(0.1, 0.9, 10, 0.4, pat.DriftBatteryFast)
	tab.Add(0.8, 0.2, 90, 0.7)
	patch, err := tab.CheckpointPatch()
	if err != nil {
		t.Fatal(err)
	}
	del, err := json.Marshal(map[string]any{"pat": patch})
	if err != nil {
		t.Fatal(err)
	}

	l := NewCheckpointLog()
	l.Append(0, 0, 0, key, false)
	l.Append(1, 600, 600, del, true)
	raw, err := MaterializeAt(l.Records(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		PAT pat.TableState `json:"pat"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	restored := pat.MustNew(tab.Config())
	if err := restored.Restore(doc.PAT); err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(restored.Checkpoint())
	want, _ := json.Marshal(tab.Checkpoint())
	if string(got) != string(want) {
		t.Fatalf("materialized PAT drifted from live table:\n got %s\nwant %s", got, want)
	}
}

// TestSpliceKeyedMergeErrors pins the malformed-patch failures: a merge
// key that is not a string, elements that are not objects, a drop list
// that is not an array, and a delta value that is not an array must all
// error instead of corrupting the materialized state.
func TestSpliceKeyedMergeErrors(t *testing.T) {
	prev := map[string]any{"entries": []any{map[string]any{"k": 1.0}}}
	for name, delta := range map[string]string{
		"merge key not a string": `{"entries":[],"entries@mergekey":7}`,
		"element not an object":  `{"entries":[42],"entries@mergekey":"k"}`,
		"drop list not an array": `{"entries":[],"entries@mergekey":"k","entries@drop":"k"}`,
		"delta value not array":  `{"entries":{"k":1},"entries@mergekey":"k"}`,
	} {
		var dm map[string]any
		if err := json.Unmarshal(json.RawMessage(delta), &dm); err != nil {
			t.Fatal(err)
		}
		if _, err := spliceCheckpointDelta(prev, dm); err == nil {
			t.Errorf("%s: splice accepted malformed delta %s", name, delta)
		}
	}
}

// TestMaterializeAtSkipsForeignRuns checks multi-run captures: the
// backward scan to the keyframe must only follow records of the same run.
func TestMaterializeAtSkipsForeignRuns(t *testing.T) {
	records := deltaChain(t)
	for i := range records {
		records[i].Run = "a"
	}
	// Interleave another run's keyframe between a's keyframe and deltas.
	foreign := CheckpointRecord{V: CheckpointVersion, Run: "b", Slot: 0, State: json.RawMessage(`{"series":[99]}`)}
	foreign.Hash = HashCheckpoint(foreign)
	mixed := []CheckpointRecord{records[0], foreign, records[1], records[2]}

	raw, err := MaterializeAt(mixed, 3)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got["series"], []any{1.0, 2.0, 3.0, 4.0, 5.0}) {
		t.Fatalf("delta spliced against the wrong run's keyframe: %v", got["series"])
	}
}

// TestMaterializeAtBadOffset rejects a splice offset beyond the previous
// series length instead of silently corrupting state.
func TestMaterializeAtBadOffset(t *testing.T) {
	l := NewCheckpointLog()
	l.Append(0, 0, 0, json.RawMessage(`{"series":[1]}`), false)
	l.Append(1, 600, 600, json.RawMessage(`{"series":[2],"series@base":5}`), true)
	if _, err := MaterializeAt(l.Records(), 1); err == nil || !strings.Contains(err.Error(), "beyond previous length") {
		t.Fatalf("offset beyond previous length not rejected: %v", err)
	}
}

// TestValidateMixedVersionChain accepts a pre-upgrade v1 prefix continued
// by v2 records — the shape a capture resumed across the format upgrade
// produces — while rejecting the malformed variants.
func TestValidateMixedVersionChain(t *testing.T) {
	mk := func(v, slot int, delta bool, prev string) CheckpointRecord {
		r := CheckpointRecord{V: v, Slot: slot, Step: slot * 600, Seconds: float64(slot * 600),
			State: json.RawMessage(`{}`), Delta: delta, Prev: prev}
		r.Hash = HashCheckpoint(r)
		return r
	}
	v1 := mk(1, 0, false, "")
	v2key := mk(2, 1, false, v1.Hash)
	v2delta := mk(2, 2, true, v2key.Hash)
	if err := ValidateCheckpoints([]CheckpointRecord{v1, v2key, v2delta}); err != nil {
		t.Fatalf("mixed v1/v2 chain rejected: %v", err)
	}

	// A delta stamped v1 is malformed.
	badV1Delta := mk(1, 3, true, v2delta.Hash)
	if err := ValidateCheckpoints([]CheckpointRecord{v1, v2key, v2delta, badV1Delta}); err == nil {
		t.Fatal("v1 delta record accepted")
	}
	// A chain may not open with a delta.
	orphan := mk(2, 0, true, "")
	if err := ValidateCheckpoints([]CheckpointRecord{orphan}); err == nil {
		t.Fatal("chain opening with a delta accepted")
	}
	// A future schema version must be refused.
	future := mk(CheckpointVersion+1, 0, false, "")
	if err := ValidateCheckpoints([]CheckpointRecord{future}); err == nil {
		t.Fatal("future schema version accepted")
	}
}
