package pat

import "testing"

func seeded() *Table {
	t := MustNew(DefaultConfig())
	for sc := 0.05; sc < 1; sc += 0.1 {
		for ba := 0.05; ba < 1; ba += 0.1 {
			for pm := 10.0; pm < 200; pm += 20 {
				t.Add(sc, ba, 10, 0.5)
				_ = pm
			}
		}
	}
	return t
}

func BenchmarkLookupHit(b *testing.B) {
	t := seeded()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(0.55, 0.45, 10)
	}
}

func BenchmarkLookupSimilar(b *testing.B) {
	t := seeded()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(0.55, 0.45, 399) // misses: falls back to Similar
	}
}

func BenchmarkUpdate(b *testing.B) {
	t := seeded()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := DriftBatteryFast
		if i%2 == 0 {
			d = DriftSupercapFast
		}
		t.Update(0.55, 0.45, 10, 0.5, d)
	}
}
