package pat

import (
	"bytes"
	"encoding/json"
	"math/rand"

	"heb/internal/units"
	"testing"
)

// seededTable builds a table with a spread of operating points, some
// looked up and some updated so Hits/Updates/lookups/misses are all
// non-zero.
func seededTable(t *testing.T) *Table {
	t.Helper()
	tab := MustNew(Config{LevelBins: 10, PMBinWatts: 20, DeltaR: 0.01, MaxEntries: 64})
	for i := 0; i < 8; i++ {
		tab.Add(float64(i)/10, float64(8-i)/10, units.Power(40*i), 0.3+0.05*float64(i))
	}
	tab.Lookup(0.1, 0.7, 40)  // exact hit
	tab.Lookup(0.95, 0.95, 5) // miss, served by similar
	tab.Update(0.2, 0.6, 80, 0.5, DriftBatteryFast)
	return tab
}

// TestAppendCheckpointJSONMatchesMarshal pins the hand-rolled keyframe
// encoder to encoding/json byte for byte: the checkpoint chain's
// validators unmarshal with the stdlib, so the fast path may not drift
// from it in field order, number formatting, or entry order.
func TestAppendCheckpointJSONMatchesMarshal(t *testing.T) {
	tab := seededTable(t)
	want, err := json.Marshal(tab.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	got, err := tab.AppendCheckpointJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("AppendCheckpointJSON drifted from json.Marshal:\n got %s\nwant %s", got, want)
	}
}

// TestAppendCheckpointJSONNegativeKeys exercises the packed-key sort
// with levels below zero: the bias must keep integer order identical to
// keyLess, so the encoder's entry order still matches Entries().
func TestAppendCheckpointJSONNegativeKeys(t *testing.T) {
	tab := MustNew(DefaultConfig())
	for _, k := range []Key{
		{SCLevel: -3, BALevel: 5, PMLevel: -1},
		{SCLevel: -3, BALevel: 5, PMLevel: 2},
		{SCLevel: -3, BALevel: -5, PMLevel: 9},
		{SCLevel: 0, BALevel: 0, PMLevel: 0},
		{SCLevel: 4, BALevel: -2, PMLevel: -7},
	} {
		tab.entries[k] = &Entry{Key: k, Ratio: 0.5, Hits: 1}
	}
	want, err := json.Marshal(tab.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	got, err := tab.AppendCheckpointJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("negative-key encode drifted from json.Marshal:\n got %s\nwant %s", got, want)
	}
}

// TestAppendCheckpointJSONOverflowFallback forces a key outside the
// packable ±2^20 range; the slow path must produce the same bytes.
func TestAppendCheckpointJSONOverflowFallback(t *testing.T) {
	tab := seededTable(t)
	k := Key{SCLevel: 1 << 21, BALevel: 0, PMLevel: 0}
	tab.entries[k] = &Entry{Key: k, Ratio: 1}
	want, err := json.Marshal(tab.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	got, err := tab.AppendCheckpointJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("overflow fallback drifted from json.Marshal:\n got %s\nwant %s", got, want)
	}
}

// TestPackKeyOrderMatchesKeyLess is the property the packed sort leans
// on: for in-range keys, integer order of the packed form is exactly
// keyLess, and unpack inverts pack.
func TestPackKeyOrderMatchesKeyLess(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randKey := func() Key {
		return Key{
			SCLevel: rng.Intn(2*keyPackBias) - keyPackBias,
			BALevel: rng.Intn(2*keyPackBias) - keyPackBias,
			PMLevel: rng.Intn(2*keyPackBias) - keyPackBias,
		}
	}
	for i := 0; i < 10000; i++ {
		a, b := randKey(), randKey()
		pa, ok := packKey(a)
		if !ok {
			t.Fatalf("in-range key %+v not packable", a)
		}
		if back := unpackKey(pa); back != a {
			t.Fatalf("round trip %+v -> %d -> %+v", a, pa, back)
		}
		pb, _ := packKey(b)
		if (pa < pb) != keyLess(a, b) {
			t.Fatalf("packed order disagrees with keyLess for %+v vs %+v", a, b)
		}
	}
	if _, ok := packKey(Key{SCLevel: keyPackBias}); ok {
		t.Fatal("out-of-range key reported packable")
	}
	if _, ok := packKey(Key{PMLevel: -keyPackBias - 1}); ok {
		t.Fatal("out-of-range negative key reported packable")
	}
}

// TestCheckpointPatchTracksChanges walks a mark/mutate/patch cycle: the
// patch carries exactly the touched entries, tombstones for evictions,
// and nothing after a fresh mark.
func TestCheckpointPatchTracksChanges(t *testing.T) {
	tab := MustNew(Config{LevelBins: 10, PMBinWatts: 20, DeltaR: 0.01, MaxEntries: 3})
	tab.Add(0.1, 0.9, 10, 0.4)
	tab.Add(0.5, 0.5, 50, 0.5)
	tab.TrackChanges()
	tab.MarkCheckpointed()

	p, err := tab.CheckpointPatch()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Entries) != 0 || len(p.Drop) != 0 {
		t.Fatalf("clean table produced non-empty patch: %+v", p)
	}
	if p.MergeKey != "Key" {
		t.Fatalf("merge key %q, want Key", p.MergeKey)
	}

	// One update dirties one entry.
	tab.Update(0.1, 0.9, 10, 0.4, DriftBatteryFast)
	p, err = tab.CheckpointPatch()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Entries) != 1 || p.Entries[0].Updates != 1 {
		t.Fatalf("update not reflected in patch: %+v", p.Entries)
	}

	// Filling past MaxEntries evicts the coldest; the patch must carry
	// both the new entries and the tombstone.
	evicted := tab.Entries()[0].Key // all Hits equal: coldest is lowest key
	tab.Add(0.7, 0.2, 90, 0.6)
	tab.Add(0.9, 0.1, 120, 0.7)
	p, err = tab.CheckpointPatch()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Drop) != 1 || p.Drop[0] != evicted {
		t.Fatalf("eviction tombstone missing: drop=%v want [%+v]", p.Drop, evicted)
	}

	// Marking resets the baseline.
	tab.MarkCheckpointed()
	p, err = tab.CheckpointPatch()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Entries) != 0 || len(p.Drop) != 0 {
		t.Fatalf("patch not empty after mark: %+v", p)
	}
}

// TestCheckpointPatchRequiresTracking: a patch from an untracked table
// would silently claim nothing changed, so it must error instead.
func TestCheckpointPatchRequiresTracking(t *testing.T) {
	tab := MustNew(DefaultConfig())
	if _, err := tab.CheckpointPatch(); err == nil {
		t.Fatal("CheckpointPatch without TrackChanges did not error")
	}
}

// TestCheckpointRestoreRoundTrip: restore rebuilds the exact table and
// rejects a snapshot from a differently-binned table.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	tab := seededTable(t)
	snap := tab.Checkpoint()

	other := MustNew(tab.Config())
	other.Add(0.9, 0.9, 500, 0.9) // junk the restore must clear
	if err := other.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got, want := other.Checkpoint(), snap
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("restore round trip drifted:\n got %s\nwant %s", gotJSON, wantJSON)
	}

	mismatched := MustNew(Config{LevelBins: 5, PMBinWatts: 20, DeltaR: 0.01, MaxEntries: 64})
	if err := mismatched.Restore(snap); err == nil {
		t.Fatal("restore into mismatched config did not error")
	}
}
