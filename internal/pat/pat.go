// Package pat implements the Power Allocation Table of the HEB controller
// (paper Section 5.2-5.3, Figure 10). The table maps a coarse-grained
// operating point — available super-capacitor energy, available battery
// energy, and predicted power mismatch ΔPM — to the server ratio R_λ that
// should be powered by super-capacitors during a large peak.
//
// Entries are seeded by profiling (a pilot run like the paper's Figure 6
// sweep), then maintained online: unknown operating points fall back to
// the most similar known entry; after each slot the controller either adds
// a new entry or nudges the stored ratio by ±Δr according to which pool
// drained faster than expected (Figure 10 lines 12-23).
package pat

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"heb/internal/units"
)

// Key is the quantized operating point of a table entry.
type Key struct {
	// SCLevel and BALevel are the quantized available-energy fractions
	// of the super-capacitor and battery pools, in quantization bins.
	SCLevel, BALevel int
	// PMLevel is the quantized power mismatch bin.
	PMLevel int
}

// Entry is one row of the table.
type Entry struct {
	Key Key
	// Ratio is R_λ, the fraction of overloaded servers assigned to the
	// super-capacitor pool, in [0,1].
	Ratio float64
	// Hits counts lookups that landed on this entry (diagnostics).
	Hits int
	// Updates counts ±Δr adjustments applied (diagnostics).
	Updates int
}

// Config tunes the table's quantization and learning.
type Config struct {
	// LevelBins quantizes the pool energy fractions: fraction f lands
	// in bin floor(f·LevelBins), so e.g. 10 gives 10% resolution.
	LevelBins int
	// PMBinWatts quantizes the power mismatch in watts per bin.
	PMBinWatts float64
	// DeltaR is the ±Δr learning step (paper default 1%).
	DeltaR float64
	// MaxEntries bounds the table ("the number of entries in PAT is
	// limited"); when full, the least-hit entry is evicted.
	MaxEntries int
}

// DefaultConfig returns the paper-faithful defaults.
func DefaultConfig() Config {
	return Config{LevelBins: 10, PMBinWatts: 20, DeltaR: 0.01, MaxEntries: 4096}
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.LevelBins <= 0:
		return fmt.Errorf("pat: level bins %d must be positive", c.LevelBins)
	case c.PMBinWatts <= 0:
		return fmt.Errorf("pat: PM bin %g watts must be positive", c.PMBinWatts)
	case c.DeltaR <= 0 || c.DeltaR >= 1:
		return fmt.Errorf("pat: delta-r %g must be in (0,1)", c.DeltaR)
	case c.MaxEntries <= 0:
		return fmt.Errorf("pat: max entries %d must be positive", c.MaxEntries)
	}
	return nil
}

// Table is the power allocation table. It is not safe for concurrent use;
// the controller owns it from a single goroutine.
type Table struct {
	cfg     Config
	entries map[Key]*Entry
	// spare holds entries retired by Reset for reuse: re-seeding a pooled
	// table revisits mostly the same operating points, so Add can recycle
	// the old Entry values instead of allocating fresh ones.
	spare map[Key]*Entry

	// dirty and dropped track mutations since the last checkpoint mark,
	// so a delta checkpoint carries only the handful of entries a slot
	// touched instead of the whole table. Tracking is off until
	// TrackChanges — profiling seeds thousands of entries before the
	// first checkpoint could ever want them, and runs without delta
	// checkpointing should not pay for the bookkeeping at all.
	track   bool
	dirty   map[Key]struct{}
	dropped map[Key]struct{}

	lookups, misses int
}

// TrackChanges turns on dirty/dropped tracking so CheckpointPatch can
// report what changed. The engine enables it before the first step of a
// delta-checkpointed run; the table's state at that moment becomes the
// initial baseline.
func (t *Table) TrackChanges() { t.track = true }

// mark notes that k's entry changed since the last checkpoint mark.
func (t *Table) mark(k Key) {
	if !t.track {
		return
	}
	if t.dirty == nil {
		t.dirty = make(map[Key]struct{})
	}
	t.dirty[k] = struct{}{}
}

// markDropped notes that k's entry was evicted since the last mark.
func (t *Table) markDropped(k Key) {
	if !t.track {
		return
	}
	delete(t.dirty, k)
	if t.dropped == nil {
		t.dropped = make(map[Key]struct{})
	}
	t.dropped[k] = struct{}{}
}

// New builds an empty table.
func New(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Table{cfg: cfg, entries: make(map[Key]*Entry)}, nil
}

// MustNew is New for known-good configs.
func MustNew(cfg Config) *Table {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the table's configuration.
func (t *Table) Config() Config { return t.cfg }

// Len returns the number of entries.
func (t *Table) Len() int { return len(t.entries) }

// Quantize maps a raw operating point to its table key. scFrac and baFrac
// are available-energy fractions in [0,1]; pm is the power mismatch.
func (t *Table) Quantize(scFrac, baFrac float64, pm units.Power) Key {
	return Key{
		SCLevel: t.quantizeFrac(scFrac),
		BALevel: t.quantizeFrac(baFrac),
		PMLevel: t.quantizePM(pm),
	}
}

func (t *Table) quantizeFrac(f float64) int {
	f = units.Clamp(f, 0, 1)
	b := int(f * float64(t.cfg.LevelBins))
	if b >= t.cfg.LevelBins {
		b = t.cfg.LevelBins - 1
	}
	return b
}

func (t *Table) quantizePM(pm units.Power) int {
	if pm <= 0 {
		return 0
	}
	return int(float64(pm) / t.cfg.PMBinWatts)
}

// Add inserts or overwrites the entry for the given raw operating point
// (Figure 10 lines 13-15: "Round(...); Add {...} to the PAT"). The ratio
// is clamped to [0,1]. When the table is at capacity, the least-hit entry
// is evicted first.
func (t *Table) Add(scFrac, baFrac float64, pm units.Power, ratio float64) Key {
	k := t.Quantize(scFrac, baFrac, pm)
	e, exists := t.entries[k]
	if !exists {
		if len(t.entries) >= t.cfg.MaxEntries {
			t.evictColdest()
		}
		if s, ok := t.spare[k]; ok {
			e = s
			delete(t.spare, k)
		} else {
			e = &Entry{}
		}
		t.entries[k] = e
	}
	*e = Entry{Key: k, Ratio: units.Clamp(ratio, 0, 1)}
	t.mark(k)
	delete(t.dropped, k)
	return k
}

// Reset empties the table and clears the lookup counters, keeping the
// configuration. The retired entries are parked for Add to recycle, so a
// pooled table re-seeded with a similar operating grid allocates nothing.
func (t *Table) Reset() {
	if t.spare == nil {
		t.spare = make(map[Key]*Entry, len(t.entries))
	}
	for k, e := range t.spare {
		t.entries[k] = e
		delete(t.spare, k)
	}
	t.entries, t.spare = t.spare, t.entries
	t.lookups, t.misses = 0, 0
	clear(t.dirty)
	clear(t.dropped)
}

func (t *Table) evictColdest() {
	var coldest *Entry
	for _, e := range t.entries {
		if coldest == nil || e.Hits < coldest.Hits ||
			(e.Hits == coldest.Hits && keyLess(e.Key, coldest.Key)) {
			coldest = e
		}
	}
	if coldest != nil {
		delete(t.entries, coldest.Key)
		t.markDropped(coldest.Key)
	}
}

func keyLess(a, b Key) bool {
	if a.SCLevel != b.SCLevel {
		return a.SCLevel < b.SCLevel
	}
	if a.BALevel != b.BALevel {
		return a.BALevel < b.BALevel
	}
	return a.PMLevel < b.PMLevel
}

// Lookup finds R_λ for the raw operating point. It returns the exact
// quantized entry if present (Figure 10 lines 2-6); otherwise the most
// similar entry under a weighted Manhattan distance over the key space
// (line 8, Similar(...)). The boolean reports whether anything was found
// (an empty table yields false and ratio 0.5 as a neutral default).
func (t *Table) Lookup(scFrac, baFrac float64, pm units.Power) (ratio float64, exact bool, found bool) {
	t.lookups++
	k := t.Quantize(scFrac, baFrac, pm)
	if e, ok := t.entries[k]; ok {
		e.Hits++
		t.mark(k)
		return e.Ratio, true, true
	}
	t.misses++
	e := t.similar(k)
	if e == nil {
		return 0.5, false, false
	}
	e.Hits++
	t.mark(e.Key)
	return e.Ratio, false, true
}

// similar returns the nearest entry to k, preferring matches in the PM
// dimension (the mismatch magnitude drives the decision most strongly),
// breaking exact-distance ties deterministically by key order.
func (t *Table) similar(k Key) *Entry {
	var best *Entry
	bestDist := math.Inf(1)
	// Deterministic iteration: collect and sort keys.
	keys := make([]Key, 0, len(t.entries))
	for kk := range t.entries {
		keys = append(keys, kk)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	for _, kk := range keys {
		d := 2*math.Abs(float64(kk.PMLevel-k.PMLevel)) +
			math.Abs(float64(kk.SCLevel-k.SCLevel)) +
			math.Abs(float64(kk.BALevel-k.BALevel))
		if d < bestDist {
			bestDist = d
			best = t.entries[kk]
		}
	}
	return best
}

// Drift describes which pool drained faster than expected over a slot,
// from the controller's end-of-slot comparison of SC/BA energy ratios
// (Figure 10 lines 17-21).
type Drift int

const (
	// DriftNone: the pools drained as the table expected.
	DriftNone Drift = iota
	// DriftBatteryFast: the battery fraction fell relative to the SC
	// fraction — the battery carried too much; shift load toward SCs.
	DriftBatteryFast
	// DriftSupercapFast: the SC fraction fell relatively — SCs carried
	// too much; shift load toward batteries.
	DriftSupercapFast
)

// ClassifyDrift compares the start and end SC:BA availability ratios of a
// slot and returns the drift direction, with a small relative tolerance so
// measurement noise does not thrash the table.
func ClassifyDrift(scStart, baStart, scEnd, baEnd float64) Drift {
	const tol = 0.02
	startRatio := safeRatio(scStart, baStart)
	endRatio := safeRatio(scEnd, baEnd)
	switch {
	case endRatio > startRatio*(1+tol):
		// SC share grew ⇒ battery drained faster.
		return DriftBatteryFast
	case endRatio < startRatio*(1-tol):
		return DriftSupercapFast
	default:
		return DriftNone
	}
}

func safeRatio(num, den float64) float64 {
	if den <= 1e-12 {
		if num <= 1e-12 {
			return 1
		}
		return math.Inf(1)
	}
	return num / den
}

// Update applies the ±Δr learning rule to the entry for the slot's
// starting operating point: DriftBatteryFast increases R_λ (more load on
// SCs next time), DriftSupercapFast decreases it (Figure 10 lines 16-22).
// If no entry exists for the operating point, one is created at the given
// observed ratio first. The updated ratio is returned.
func (t *Table) Update(scFrac, baFrac float64, pm units.Power, observedRatio float64, d Drift) float64 {
	k := t.Quantize(scFrac, baFrac, pm)
	e, ok := t.entries[k]
	if !ok {
		t.Add(scFrac, baFrac, pm, observedRatio)
		e = t.entries[k]
	}
	switch d {
	case DriftBatteryFast:
		e.Ratio = units.Clamp(e.Ratio+t.cfg.DeltaR, 0, 1)
		e.Updates++
		t.mark(k)
	case DriftSupercapFast:
		e.Ratio = units.Clamp(e.Ratio-t.cfg.DeltaR, 0, 1)
		e.Updates++
		t.mark(k)
	}
	return e.Ratio
}

// Entries returns the table contents sorted by key (for reports and
// serialization).
func (t *Table) Entries() []Entry {
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return keyLess(out[i].Key, out[j].Key) })
	return out
}

// Stats reports lookup traffic: total lookups and how many missed the
// exact entry (served by Similar instead).
func (t *Table) Stats() (lookups, misses int) { return t.lookups, t.misses }

// tableJSON is the stable serialized form.
type tableJSON struct {
	Config  Config  `json:"config"`
	Entries []Entry `json:"entries"`
}

// Save writes the table as JSON.
func (t *Table) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tableJSON{Config: t.cfg, Entries: t.Entries()}); err != nil {
		return fmt.Errorf("pat: save: %w", err)
	}
	return nil
}

// Load reads a table saved by Save.
func Load(r io.Reader) (*Table, error) {
	var tj tableJSON
	if err := json.NewDecoder(r).Decode(&tj); err != nil {
		return nil, fmt.Errorf("pat: load: %w", err)
	}
	t, err := New(tj.Config)
	if err != nil {
		return nil, err
	}
	for _, e := range tj.Entries {
		e := e
		t.entries[e.Key] = &e
	}
	return t, nil
}
