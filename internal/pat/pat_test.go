package pat

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"heb/internal/units"
)

func TestConfigValidate(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero bins", func(c *Config) { c.LevelBins = 0 }},
		{"zero pm bin", func(c *Config) { c.PMBinWatts = 0 }},
		{"delta zero", func(c *Config) { c.DeltaR = 0 }},
		{"delta one", func(c *Config) { c.DeltaR = 1 }},
		{"zero max entries", func(c *Config) { c.MaxEntries = 0 }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			cfg := DefaultConfig()
			m.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Errorf("Validate accepted %+v", cfg)
			}
			if _, err := New(cfg); err == nil {
				t.Error("New accepted invalid config")
			}
		})
	}
}

func TestQuantize(t *testing.T) {
	tb := MustNew(DefaultConfig()) // 10 bins, 20 W/bin
	tests := []struct {
		sc, ba float64
		pm     units.Power
		want   Key
	}{
		{0, 0, 0, Key{0, 0, 0}},
		{0.05, 0.95, 10, Key{0, 9, 0}},
		{0.5, 0.5, 100, Key{5, 5, 5}},
		{1, 1, 199, Key{9, 9, 9}},    // top fraction clamps into last bin
		{1.5, -1, -50, Key{9, 0, 0}}, // out-of-range inputs clamp
	}
	for _, tt := range tests {
		if got := tb.Quantize(tt.sc, tt.ba, tt.pm); got != tt.want {
			t.Errorf("Quantize(%g, %g, %v) = %+v, want %+v", tt.sc, tt.ba, tt.pm, got, tt.want)
		}
	}
}

func TestAddThenLookupExact(t *testing.T) {
	tb := MustNew(DefaultConfig())
	tb.Add(0.8, 0.6, 120, 0.3)
	r, exact, found := tb.Lookup(0.8, 0.6, 120)
	if !found || !exact {
		t.Fatalf("Lookup missed a just-added entry: exact=%v found=%v", exact, found)
	}
	if r != 0.3 {
		t.Errorf("ratio %g, want 0.3", r)
	}
	// Same bin, different raw values: still exact.
	r, exact, _ = tb.Lookup(0.82, 0.64, 125)
	if !exact || r != 0.3 {
		t.Errorf("same-bin lookup: exact=%v r=%g", exact, r)
	}
}

func TestLookupEmptyTable(t *testing.T) {
	tb := MustNew(DefaultConfig())
	r, exact, found := tb.Lookup(0.5, 0.5, 100)
	if found || exact {
		t.Error("empty table reported a hit")
	}
	if r != 0.5 {
		t.Errorf("empty-table default %g, want 0.5", r)
	}
}

func TestLookupSimilarFallsBackToNearest(t *testing.T) {
	tb := MustNew(DefaultConfig())
	tb.Add(0.9, 0.9, 40, 0.9)  // far in PM
	tb.Add(0.5, 0.5, 200, 0.2) // near the probe below
	r, exact, found := tb.Lookup(0.55, 0.45, 190)
	if !found {
		t.Fatal("similar lookup found nothing")
	}
	if exact {
		t.Error("lookup claims exact for a missing bin")
	}
	if r != 0.2 {
		t.Errorf("similar picked ratio %g, want 0.2 (nearest in PM)", r)
	}
}

func TestAddClampsRatio(t *testing.T) {
	tb := MustNew(DefaultConfig())
	tb.Add(0.5, 0.5, 100, 1.7)
	r, _, _ := tb.Lookup(0.5, 0.5, 100)
	if r != 1 {
		t.Errorf("ratio %g, want clamped to 1", r)
	}
	tb.Add(0.5, 0.5, 100, -0.3)
	r, _, _ = tb.Lookup(0.5, 0.5, 100)
	if r != 0 {
		t.Errorf("ratio %g, want clamped to 0", r)
	}
}

func TestEvictionAtCapacity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxEntries = 3
	tb := MustNew(cfg)
	tb.Add(0.1, 0.1, 20, 0.1)
	tb.Add(0.3, 0.3, 60, 0.3)
	tb.Add(0.5, 0.5, 100, 0.5)
	// Heat up two entries; the cold one (0.1) should be evicted.
	tb.Lookup(0.3, 0.3, 60)
	tb.Lookup(0.5, 0.5, 100)
	tb.Add(0.9, 0.9, 180, 0.9)
	if tb.Len() != 3 {
		t.Fatalf("table size %d, want 3", tb.Len())
	}
	if _, exact, _ := tb.Lookup(0.1, 0.1, 20); exact {
		t.Error("cold entry survived eviction")
	}
	if _, exact, _ := tb.Lookup(0.9, 0.9, 180); !exact {
		t.Error("new entry missing after eviction")
	}
}

func TestClassifyDrift(t *testing.T) {
	tests := []struct {
		name                           string
		scStart, baStart, scEnd, baEnd float64
		want                           Drift
	}{
		{"balanced", 0.8, 0.8, 0.6, 0.6, DriftNone},
		{"battery drains fast", 0.8, 0.8, 0.7, 0.4, DriftBatteryFast},
		{"sc drains fast", 0.8, 0.8, 0.3, 0.7, DriftSupercapFast},
		{"both empty", 0, 0, 0, 0, DriftNone},
		{"battery hits zero", 0.5, 0.5, 0.4, 0, DriftBatteryFast},
		{"sc hits zero", 0.5, 0.5, 0, 0.4, DriftSupercapFast},
		{"tiny noise ignored", 0.8, 0.8, 0.60, 0.605, DriftNone},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := ClassifyDrift(tt.scStart, tt.baStart, tt.scEnd, tt.baEnd)
			if got != tt.want {
				t.Errorf("ClassifyDrift = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestUpdateAdjustsRatio(t *testing.T) {
	tb := MustNew(DefaultConfig()) // Δr = 0.01
	tb.Add(0.5, 0.5, 100, 0.40)
	got := tb.Update(0.5, 0.5, 100, 0.40, DriftBatteryFast)
	if math.Abs(got-0.41) > 1e-12 {
		t.Errorf("after battery-fast update ratio %g, want 0.41", got)
	}
	got = tb.Update(0.5, 0.5, 100, 0.40, DriftSupercapFast)
	if math.Abs(got-0.40) > 1e-12 {
		t.Errorf("after sc-fast update ratio %g, want back to 0.40", got)
	}
	got = tb.Update(0.5, 0.5, 100, 0.40, DriftNone)
	if math.Abs(got-0.40) > 1e-12 {
		t.Errorf("no-drift update changed ratio to %g", got)
	}
}

func TestUpdateCreatesMissingEntry(t *testing.T) {
	tb := MustNew(DefaultConfig())
	got := tb.Update(0.7, 0.3, 150, 0.66, DriftNone)
	if math.Abs(got-0.66) > 1e-12 {
		t.Errorf("created ratio %g, want observed 0.66", got)
	}
	if tb.Len() != 1 {
		t.Errorf("table size %d, want 1", tb.Len())
	}
}

func TestUpdateRatioStaysInRangeProperty(t *testing.T) {
	f := func(steps []bool) bool {
		tb := MustNew(DefaultConfig())
		tb.Add(0.5, 0.5, 100, 0.5)
		for _, up := range steps {
			d := DriftSupercapFast
			if up {
				d = DriftBatteryFast
			}
			r := tb.Update(0.5, 0.5, 100, 0.5, d)
			if r < 0 || r > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLookupAfterAddProperty(t *testing.T) {
	// DESIGN.md invariant: lookup after Add returns the added R.
	f := func(sc, ba, ratio float64, pmRaw uint16) bool {
		if math.IsNaN(sc) || math.IsNaN(ba) || math.IsNaN(ratio) {
			return true
		}
		tb := MustNew(DefaultConfig())
		pm := units.Power(pmRaw % 400)
		tb.Add(sc, ba, pm, ratio)
		r, exact, found := tb.Lookup(sc, ba, pm)
		return found && exact && r == units.Clamp(ratio, 0, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStatsCountLookups(t *testing.T) {
	tb := MustNew(DefaultConfig())
	tb.Add(0.5, 0.5, 100, 0.5)
	tb.Lookup(0.5, 0.5, 100) // hit
	tb.Lookup(0.9, 0.1, 300) // miss (similar)
	lookups, misses := tb.Stats()
	if lookups != 2 || misses != 1 {
		t.Errorf("stats = %d/%d, want 2/1", lookups, misses)
	}
}

func TestEntriesSortedDeterministic(t *testing.T) {
	tb := MustNew(DefaultConfig())
	tb.Add(0.9, 0.1, 60, 0.2)
	tb.Add(0.1, 0.9, 180, 0.8)
	tb.Add(0.5, 0.5, 100, 0.5)
	es := tb.Entries()
	if len(es) != 3 {
		t.Fatalf("entries %d, want 3", len(es))
	}
	for i := 1; i < len(es); i++ {
		if !keyLess(es[i-1].Key, es[i].Key) {
			t.Errorf("entries not sorted at %d: %+v then %+v", i, es[i-1].Key, es[i].Key)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tb := MustNew(DefaultConfig())
	tb.Add(0.8, 0.2, 140, 0.7)
	tb.Add(0.2, 0.8, 40, 0.25)
	var buf bytes.Buffer
	if err := tb.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if back.Len() != 2 {
		t.Fatalf("loaded %d entries, want 2", back.Len())
	}
	r, exact, _ := back.Lookup(0.8, 0.2, 140)
	if !exact || r != 0.7 {
		t.Errorf("loaded entry: exact=%v r=%g", exact, r)
	}
	if _, err := Load(bytes.NewBufferString("{not json")); err == nil {
		t.Error("Load accepted garbage")
	}
	if _, err := Load(bytes.NewBufferString(`{"config":{"LevelBins":0}}`)); err == nil {
		t.Error("Load accepted invalid config")
	}
}
