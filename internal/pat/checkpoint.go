package pat

import (
	"encoding/json"
	"fmt"
	"slices"
	"sort"

	"heb/internal/jsonx"
)

// TableState is the flight-recorder snapshot of a PAT: the learned
// entries (with their hit/update counters) plus the lookup statistics.
// The configuration rides along for validation — a checkpoint restores
// into a table of the same binning, never a different one.
type TableState struct {
	Config  Config  `json:"config"`
	Entries []Entry `json:"entries"`
	Lookups int     `json:"lookups"`
	Misses  int     `json:"misses"`
}

// Checkpoint captures the table's learned state and statistics.
func (t *Table) Checkpoint() TableState {
	lookups, misses := t.Stats()
	return TableState{
		Config:  t.cfg,
		Entries: t.Entries(),
		Lookups: lookups,
		Misses:  misses,
	}
}

// Restore overwrites the table's entries and statistics from a
// checkpoint. The checkpointed configuration must match the table's.
// The restored state becomes the new delta baseline.
func (t *Table) Restore(s TableState) error {
	if s.Config != t.cfg {
		return fmt.Errorf("pat: restore config %+v into table with config %+v", s.Config, t.cfg)
	}
	t.entries = make(map[Key]*Entry, len(s.Entries))
	for _, e := range s.Entries {
		e := e
		t.entries[e.Key] = &e
	}
	t.lookups = s.Lookups
	t.misses = s.Misses
	t.MarkCheckpointed()
	return nil
}

// TablePatch is the delta form of TableState: only the entries touched
// since the last checkpoint mark, plus tombstones for evicted keys. Its
// JSON keys mirror TableState's so that a checkpoint chain's keyed-merge
// splice (obs "@mergekey"/"@drop" companions) materializes a patch back
// into a document TableState can unmarshal.
type TablePatch struct {
	Config   Config  `json:"config"`
	Entries  []Entry `json:"entries"`
	MergeKey string  `json:"entries@mergekey"`
	Drop     []Key   `json:"entries@drop,omitempty"`
	Lookups  int     `json:"lookups"`
	Misses   int     `json:"misses"`
}

// CheckpointPatch captures only what changed since the last
// MarkCheckpointed (or Restore/Reset). It has no side effects; call
// MarkCheckpointed once the record holding the patch is emitted. The
// table must have TrackChanges enabled — a patch built without tracking
// would silently encode "nothing changed".
func (t *Table) CheckpointPatch() (TablePatch, error) {
	if !t.track {
		return TablePatch{}, fmt.Errorf("pat: CheckpointPatch without TrackChanges")
	}
	p := TablePatch{
		Config:   t.cfg,
		Entries:  make([]Entry, 0, len(t.dirty)),
		MergeKey: "Key",
		Lookups:  t.lookups,
		Misses:   t.misses,
	}
	for k := range t.dirty {
		if e, ok := t.entries[k]; ok {
			p.Entries = append(p.Entries, *e)
		}
	}
	sort.Slice(p.Entries, func(i, j int) bool { return keyLess(p.Entries[i].Key, p.Entries[j].Key) })
	for k := range t.dropped {
		p.Drop = append(p.Drop, k)
	}
	sort.Slice(p.Drop, func(i, j int) bool { return keyLess(p.Drop[i], p.Drop[j]) })
	return p, nil
}

// MarkCheckpointed clears the dirty/dropped tracking: the table's current
// state becomes the baseline the next CheckpointPatch diffs against.
func (t *Table) MarkCheckpointed() {
	clear(t.dirty)
	clear(t.dropped)
}

// AppendCheckpointJSON appends the JSON encoding of Checkpoint() — the
// full TableState — to b, byte-for-byte what json.Marshal produces but
// without reflecting over every entry. Keyframe records re-marshal the
// whole table every cadence, which made the table the dominant marshal
// cost of a checkpointed run.
func (t *Table) AppendCheckpointJSON(b []byte) ([]byte, error) {
	cfgRaw, err := json.Marshal(t.cfg)
	if err != nil {
		return nil, fmt.Errorf("pat: marshal config: %w", err)
	}
	b = append(b, `{"config":`...)
	b = append(b, cfgRaw...)
	b = append(b, `,"entries":[`...)
	// Sort packed keys rather than copying the entries out: the int64
	// slice is a quarter the size of the []Entry that Entries() would
	// build, and slices.Sort on integers beats an interface-based
	// sort.Slice by enough that the sort no longer costs more than the
	// encoding it orders.
	packed := make([]int64, 0, len(t.entries))
	for k := range t.entries {
		v, ok := packKey(k)
		if !ok {
			return t.appendEntriesSlow(b)
		}
		packed = append(packed, v)
	}
	slices.Sort(packed)
	for i, v := range packed {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendEntryJSON(b, *t.entries[unpackKey(v)])
	}
	b = append(b, `],"lookups":`...)
	b = jsonx.AppendInt(b, t.lookups)
	b = append(b, `,"misses":`...)
	b = jsonx.AppendInt(b, t.misses)
	return append(b, '}'), nil
}

// keyPackBias biases each level into 21 non-negative bits so a packed
// key's integer order matches keyLess. Quantized bins live nowhere near
// the ±2^20 range; packKey reports false for a key that somehow does.
const keyPackBias = 1 << 20

func packKey(k Key) (int64, bool) {
	if k.SCLevel < -keyPackBias || k.SCLevel >= keyPackBias ||
		k.BALevel < -keyPackBias || k.BALevel >= keyPackBias ||
		k.PMLevel < -keyPackBias || k.PMLevel >= keyPackBias {
		return 0, false
	}
	return int64(k.SCLevel+keyPackBias)<<42 |
		int64(k.BALevel+keyPackBias)<<21 |
		int64(k.PMLevel+keyPackBias), true
}

func unpackKey(v int64) Key {
	const mask = 1<<21 - 1
	return Key{
		SCLevel: int(v>>42&mask) - keyPackBias,
		BALevel: int(v>>21&mask) - keyPackBias,
		PMLevel: int(v&mask) - keyPackBias,
	}
}

// appendEntriesSlow finishes the entry array for a table whose keys
// overflow the packed form; ordering still matches Entries().
func (t *Table) appendEntriesSlow(b []byte) ([]byte, error) {
	for i, e := range t.Entries() {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendEntryJSON(b, e)
	}
	b = append(b, `],"lookups":`...)
	b = jsonx.AppendInt(b, t.lookups)
	b = append(b, `,"misses":`...)
	b = jsonx.AppendInt(b, t.misses)
	return append(b, '}'), nil
}

// appendEntryJSON appends one Entry in the field order encoding/json
// uses for the untagged struct.
func appendEntryJSON(b []byte, e Entry) []byte {
	b = append(b, `{"Key":{"SCLevel":`...)
	b = jsonx.AppendInt(b, e.Key.SCLevel)
	b = append(b, `,"BALevel":`...)
	b = jsonx.AppendInt(b, e.Key.BALevel)
	b = append(b, `,"PMLevel":`...)
	b = jsonx.AppendInt(b, e.Key.PMLevel)
	b = append(b, `},"Ratio":`...)
	b = jsonx.AppendFloat(b, e.Ratio)
	b = append(b, `,"Hits":`...)
	b = jsonx.AppendInt(b, e.Hits)
	b = append(b, `,"Updates":`...)
	b = jsonx.AppendInt(b, e.Updates)
	return append(b, '}')
}
