package pat

import "fmt"

// TableState is the flight-recorder snapshot of a PAT: the learned
// entries (with their hit/update counters) plus the lookup statistics.
// The configuration rides along for validation — a checkpoint restores
// into a table of the same binning, never a different one.
type TableState struct {
	Config  Config  `json:"config"`
	Entries []Entry `json:"entries"`
	Lookups int     `json:"lookups"`
	Misses  int     `json:"misses"`
}

// Checkpoint captures the table's learned state and statistics.
func (t *Table) Checkpoint() TableState {
	lookups, misses := t.Stats()
	return TableState{
		Config:  t.cfg,
		Entries: t.Entries(),
		Lookups: lookups,
		Misses:  misses,
	}
}

// Restore overwrites the table's entries and statistics from a
// checkpoint. The checkpointed configuration must match the table's.
func (t *Table) Restore(s TableState) error {
	if s.Config != t.cfg {
		return fmt.Errorf("pat: restore config %+v into table with config %+v", s.Config, t.cfg)
	}
	t.entries = make(map[Key]*Entry, len(s.Entries))
	for _, e := range s.Entries {
		e := e
		t.entries[e.Key] = &e
	}
	t.lookups = s.Lookups
	t.misses = s.Misses
	return nil
}
