// Package telemetry implements the prototype's real-time running-state
// monitor (Figure 11, item 5): a bounded in-memory recorder of simulator
// step snapshots with an HTTP API for dashboards and scripts.
//
// Endpoints:
//
//	GET /healthz  -> 200 "ok"
//	GET /latest   -> most recent snapshot as JSON
//	GET /history  -> last N snapshots as a JSON array (?n= >= 1, default 60)
//	GET /summary  -> aggregate counters since start
//	GET /curves   -> demand/SoC sparklines as plain text (?w= width)
package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"heb/internal/ascii"
	"heb/internal/sim"
)

// Snapshot is the JSON wire form of one recorded step.
type Snapshot struct {
	Seconds     float64 `json:"t_seconds"`
	DemandW     float64 `json:"demand_w"`
	SupplyW     float64 `json:"supply_w"`
	BatterySoC  float64 `json:"battery_soc"`
	SupercapSoC float64 `json:"supercap_soc"`
	OnUtility   int     `json:"on_utility"`
	OnBattery   int     `json:"on_battery"`
	OnSupercap  int     `json:"on_supercap"`
	Off         int     `json:"off"`
	Mismatch    bool    `json:"mismatch"`
}

// fromStep converts an engine StepInfo.
func fromStep(s sim.StepInfo) Snapshot {
	return Snapshot{
		Seconds:     s.Now.Seconds(),
		DemandW:     float64(s.Demand),
		SupplyW:     float64(s.Supply),
		BatterySoC:  s.BatterySoC,
		SupercapSoC: s.SupercapSoC,
		OnUtility:   s.OnUtility,
		OnBattery:   s.OnBattery,
		OnSupercap:  s.OnSupercap,
		Off:         s.Off,
		Mismatch:    s.Mismatch,
	}
}

// Summary aggregates counters over the recorder's lifetime.
type Summary struct {
	Steps          int     `json:"steps"`
	MismatchSteps  int     `json:"mismatch_steps"`
	PeakDemandW    float64 `json:"peak_demand_w"`
	MinBatterySoC  float64 `json:"min_battery_soc"`
	MinSupercapSoC float64 `json:"min_supercap_soc"`
	ShedServerObs  int     `json:"shed_server_observations"`
}

// Recorder is a bounded ring of snapshots, safe for concurrent use: the
// simulation goroutine records while HTTP handlers read.
type Recorder struct {
	mu      sync.RWMutex
	ring    []Snapshot
	next    int
	full    bool
	summary Summary
}

// NewRecorder builds a recorder holding up to capacity snapshots.
func NewRecorder(capacity int) (*Recorder, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("telemetry: capacity %d must be positive", capacity)
	}
	return &Recorder{
		ring: make([]Snapshot, capacity),
		summary: Summary{
			MinBatterySoC:  1,
			MinSupercapSoC: 1,
		},
	}, nil
}

// MustNewRecorder is NewRecorder for known-good capacities.
func MustNewRecorder(capacity int) *Recorder {
	r, err := NewRecorder(capacity)
	if err != nil {
		panic(err)
	}
	return r
}

// Observer returns the callback to plug into sim.Config.Observer.
func (r *Recorder) Observer() func(sim.StepInfo) {
	return func(s sim.StepInfo) { r.Record(fromStep(s)) }
}

// Record appends a snapshot.
func (r *Recorder) Record(s Snapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ring[r.next] = s
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
	r.summary.Steps++
	if s.Mismatch {
		r.summary.MismatchSteps++
	}
	if s.DemandW > r.summary.PeakDemandW {
		r.summary.PeakDemandW = s.DemandW
	}
	if s.BatterySoC < r.summary.MinBatterySoC {
		r.summary.MinBatterySoC = s.BatterySoC
	}
	if s.SupercapSoC < r.summary.MinSupercapSoC {
		r.summary.MinSupercapSoC = s.SupercapSoC
	}
	r.summary.ShedServerObs += s.Off
}

// Len returns the number of snapshots currently held.
func (r *Recorder) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.full {
		return len(r.ring)
	}
	return r.next
}

// Latest returns the most recent snapshot.
func (r *Recorder) Latest() (Snapshot, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if !r.full && r.next == 0 {
		return Snapshot{}, false
	}
	i := r.next - 1
	if i < 0 {
		i = len(r.ring) - 1
	}
	return r.ring[i], true
}

// History returns up to n most recent snapshots, oldest first. n <= 0
// means "everything held" — History(0) is the idiomatic way to drain the
// full ring. Note the HTTP /history endpoint does NOT share this
// convention: there n must be a positive integer and ?n=0 is rejected
// with 400, so that a client typo never accidentally requests the whole
// (potentially large) ring.
func (r *Recorder) History(n int) []Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	size := r.next
	if r.full {
		size = len(r.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Snapshot, 0, n)
	start := r.next - n
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	return out
}

// Summary returns the aggregate counters.
func (r *Recorder) Summary() Summary {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.summary
}

// Handler returns the monitor's HTTP API.
func (r *Recorder) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/latest", func(w http.ResponseWriter, _ *http.Request) {
		s, ok := r.Latest()
		if !ok {
			http.Error(w, "no snapshots yet", http.StatusNotFound)
			return
		}
		writeJSON(w, s)
	})
	mux.HandleFunc("/history", func(w http.ResponseWriter, req *http.Request) {
		n := 60
		if q := req.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v <= 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		writeJSON(w, r.History(n))
	})
	mux.HandleFunc("/summary", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, r.Summary())
	})
	mux.HandleFunc("/curves", func(w http.ResponseWriter, req *http.Request) {
		width := 80
		if q := req.URL.Query().Get("w"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v <= 0 {
				http.Error(w, "bad w", http.StatusBadRequest)
				return
			}
			width = v
		}
		hist := r.History(0)
		if len(hist) == 0 {
			http.Error(w, "no snapshots yet", http.StatusNotFound)
			return
		}
		demand := make([]float64, len(hist))
		ba := make([]float64, len(hist))
		sc := make([]float64, len(hist))
		for i, s := range hist {
			demand[i] = s.DemandW
			ba[i] = s.BatterySoC
			sc[i] = s.SupercapSoC
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, ascii.Chart("demand W", demand, width))
		fmt.Fprintln(w, ascii.Chart("batt SoC", ba, width))
		fmt.Fprintln(w, ascii.Chart("SC SoC", sc, width))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Serve runs the monitor on addr until the server fails; it is a
// convenience for cmd/hebmon.
func Serve(addr string, r *Recorder) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           r.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	return srv.ListenAndServe()
}
