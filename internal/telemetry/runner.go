package telemetry

import (
	"time"

	"heb/internal/obs"
	"heb/internal/runner"
)

// RunnerMetrics exports a worker pool's live state as the heb_runner_*
// family:
//
//	heb_runner_workers               gauge, configured pool size
//	heb_runner_workers_busy          gauge, workers inside a cell now
//	heb_runner_queue_depth           gauge, cells not yet started
//	heb_runner_utilization_ratio     gauge, mean busy fraction so far
//	heb_runner_cells_completed_total counter
//	heb_runner_cells_failed_total    counter
//	heb_runner_cell_seconds          histogram, per-cell wall time
//
// The counters and the latency histogram are fed push-style through the
// pool's cell observer (Attach); the gauges are pulled from a Progress
// snapshot whenever Sample runs — call it before serving /metrics.
type RunnerMetrics struct {
	prog    *runner.Progress
	workers int

	gworkers, busy, queue, util *obs.Gauge
	completed, failed           *obs.Counter
	cellSeconds                 *obs.Histogram
}

// NewRunnerMetrics registers the heb_runner_* family on reg (nil gets a
// private registry) and attaches the cell observer to prog. workers is
// the configured pool size exported as heb_runner_workers.
func NewRunnerMetrics(reg *obs.Registry, prog *runner.Progress, workers int) *RunnerMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &RunnerMetrics{prog: prog, workers: workers}
	m.gworkers = reg.Gauge("heb_runner_workers", "Configured worker pool size.")
	m.busy = reg.Gauge("heb_runner_workers_busy", "Workers currently inside a cell.")
	m.queue = reg.Gauge("heb_runner_queue_depth", "Cells queued and not yet started.")
	m.util = reg.Gauge("heb_runner_utilization_ratio", "Mean busy-worker fraction since the sweep started (0..1).")
	m.completed = reg.Counter("heb_runner_cells_completed_total", "Cells finished (failures included).")
	m.failed = reg.Counter("heb_runner_cells_failed_total", "Cells finished with an error.")
	// Cells span milliseconds (unit tests) to minutes (full-length runs).
	m.cellSeconds = reg.Histogram("heb_runner_cell_seconds", "Per-cell wall time.",
		obs.ExponentialBuckets(0.001, 4, 10))
	m.gworkers.Set(float64(workers))
	if prog != nil {
		prog.SetCellObserver(func(d time.Duration, failed bool) {
			m.cellSeconds.Observe(d.Seconds())
			m.completed.Inc()
			if failed {
				m.failed.Inc()
			}
		})
	}
	return m
}

// Sample refreshes the pool gauges from the current progress snapshot.
func (m *RunnerMetrics) Sample() {
	if m.prog == nil {
		return
	}
	s := m.prog.Snapshot()
	m.busy.Set(float64(s.Active))
	m.queue.Set(float64(s.Queued))
	m.util.Set(s.Utilization(m.workers))
}

// Detach removes the cell observer from the pool.
func (m *RunnerMetrics) Detach() {
	if m.prog != nil {
		m.prog.SetCellObserver(nil)
	}
}
