package telemetry

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"runtime/metrics"
	"strings"
	"sync"
	"testing"

	"heb/internal/obs"
)

func TestHistogramQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{10, 80, 10},
		Buckets: []float64{0, 1, 2, 3},
	}
	if q := histogramQuantile(h, 0.5); q != 1 {
		t.Errorf("p50 = %g, want 1", q)
	}
	if q := histogramQuantile(h, 0.99); q != 2 {
		t.Errorf("p99 = %g, want 2", q)
	}
	if q := histogramQuantile(h, 0.05); q != 0 {
		t.Errorf("p5 = %g, want 0", q)
	}

	empty := &metrics.Float64Histogram{Counts: []uint64{0, 0}, Buckets: []float64{0, 1, 2}}
	if q := histogramQuantile(empty, 0.5); q != 0 {
		t.Errorf("empty histogram p50 = %g, want 0", q)
	}

	// runtime histograms open with a -Inf edge: the quantile must land on
	// the nearest finite boundary, never return an infinity.
	inf := &metrics.Float64Histogram{
		Counts:  []uint64{5, 5},
		Buckets: []float64{math.Inf(-1), 1e-9, math.Inf(1)},
	}
	if q := histogramQuantile(inf, 0.5); math.IsInf(q, 0) {
		t.Errorf("p50 on infinite-edged histogram = %g", q)
	}
}

func TestRuntimeMetricsSample(t *testing.T) {
	reg := obs.NewRegistry()
	rm := NewRuntimeMetrics(reg)
	runtime.GC() // ensure at least one pause lands in the histogram
	rm.Sample()

	if v, ok := reg.Get("heb_runtime_gomaxprocs"); !ok || v < 1 {
		t.Errorf("gomaxprocs = %g ok=%v", v, ok)
	}
	if v, ok := reg.Get("heb_runtime_heap_goal_bytes"); !ok || v <= 0 {
		t.Errorf("heap goal = %g ok=%v", v, ok)
	}
	if v, ok := reg.Get("heb_runtime_cpu_utilization"); !ok || v < 0 || v > 1 {
		t.Errorf("cpu utilization = %g ok=%v", v, ok)
	}
	for _, q := range []string{"0.5", "0.9", "0.99"} {
		lbl := obs.Label{Name: "q", Value: q}
		if v, ok := reg.Get("heb_runtime_gc_pause_seconds", lbl); !ok || v < 0 || math.IsInf(v, 0) {
			t.Errorf("gc pause q=%s = %g ok=%v", q, v, ok)
		}
		if _, ok := reg.Get("heb_runtime_sched_latency_seconds", lbl); !ok {
			t.Errorf("sched latency q=%s missing", q)
		}
	}
}

// TestMetricsScrapeConcurrent hammers a proc+runtime-wrapped /metrics
// endpoint from 8 goroutines while the process allocates and GCs. Run
// under -race this pins the guarantee that per-scrape sampling is safe,
// and the final check catches the counter-inflation bug where an
// out-of-order MemStats delta wrapped the unsigned subtraction.
func TestMetricsScrapeConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	pm := NewProcMetrics(reg)
	rm := NewRuntimeMetrics(reg)
	srv := httptest.NewServer(pm.Handler(rm.Handler(reg.Handler())))
	defer srv.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sink []byte
			for i := 0; i < 20; i++ {
				// Churn the heap between scrapes so GC counters move
				// while other goroutines are mid-Sample.
				sink = make([]byte, 256<<10)
				if i == 10 {
					runtime.GC()
				}
				resp, err := http.Get(srv.URL + "/")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			_ = sink
		}()
	}
	wg.Wait()

	// One more clean scrape: the GC-run counter must match the runtime's
	// own count, not a wrapped uint32 delta.
	pm.Sample()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	runs, ok := reg.Get("heb_proc_gc_runs_total")
	if !ok {
		t.Fatal("heb_proc_gc_runs_total missing")
	}
	if runs > float64(ms.NumGC) || runs < 0 {
		t.Errorf("gc runs counter %g inconsistent with runtime NumGC %d", runs, ms.NumGC)
	}
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, family := range []string{"heb_proc_heap_alloc_bytes", "heb_runtime_gomaxprocs", "heb_runtime_gc_pause_seconds"} {
		if !strings.Contains(string(body), family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
}
