package telemetry

import (
	"sync"

	"heb/internal/obs"
	"heb/internal/power"
	"heb/internal/sim"
)

// Metrics bridges engine step snapshots into an obs.Registry so a live
// run can be scraped in Prometheus text format. It exports:
//
//	heb_engine_steps_total           counter, simulated ticks completed
//	heb_engine_mismatch_steps_total  counter, ticks with demand > supply
//	heb_power_relay_switches_total   counter per {position}
//	heb_power_demand_watts           gauge
//	heb_power_supply_watts           gauge
//	heb_esd_battery_soc              gauge, 0..1
//	heb_esd_supercap_soc             gauge, 0..1
//	heb_power_servers                gauge per {position}
//
// StepInfo carries the cumulative relay-movement counts, so the bridge
// keeps the last seen vector and feeds the counters deltas.
type Metrics struct {
	reg *obs.Registry

	steps, mismatch *obs.Counter
	switches        [power.NumSources]*obs.Counter
	demand, supply  *obs.Gauge
	baSoC, scSoC    *obs.Gauge
	servers         [power.NumSources]*obs.Gauge

	mu           sync.Mutex
	lastSwitches [power.NumSources]int64
}

// NewMetrics registers the engine metric families on reg (a nil reg gets
// a fresh private registry).
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &Metrics{reg: reg}
	m.steps = reg.Counter("heb_engine_steps_total", "Simulated engine ticks completed.")
	m.mismatch = reg.Counter("heb_engine_mismatch_steps_total", "Ticks where demand exceeded effective supply.")
	m.demand = reg.Gauge("heb_power_demand_watts", "Total server demand at the latest tick.")
	m.supply = reg.Gauge("heb_power_supply_watts", "Feed availability at the latest tick.")
	m.baSoC = reg.Gauge("heb_esd_battery_soc", "Battery pool state of charge (0..1).")
	m.scSoC = reg.Gauge("heb_esd_supercap_soc", "Super-capacitor pool state of charge (0..1).")
	for src := 0; src < power.NumSources; src++ {
		pos := obs.Label{Name: "position", Value: power.Source(src).String()}
		m.switches[src] = reg.Counter("heb_power_relay_switches_total",
			"Effective relay movements by destination position.", pos)
		m.servers[src] = reg.Gauge("heb_power_servers",
			"Servers on each relay position at the latest tick.", pos)
	}
	return m
}

// Registry returns the registry the bridge feeds (mount its Handler at
// /metrics).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// Observe folds one engine step into the metrics.
func (m *Metrics) Observe(s sim.StepInfo) {
	m.steps.Inc()
	if s.Mismatch {
		m.mismatch.Inc()
	}
	m.demand.Set(float64(s.Demand))
	m.supply.Set(float64(s.Supply))
	m.baSoC.Set(s.BatterySoC)
	m.scSoC.Set(s.SupercapSoC)
	m.servers[power.SourceUtility].Set(float64(s.OnUtility))
	m.servers[power.SourceBattery].Set(float64(s.OnBattery))
	m.servers[power.SourceSupercap].Set(float64(s.OnSupercap))
	m.servers[power.SourceOff].Set(float64(s.Off))

	m.mu.Lock()
	deltas := s.RelaySwitches
	for src := range deltas {
		deltas[src] -= m.lastSwitches[src]
	}
	m.lastSwitches = s.RelaySwitches
	m.mu.Unlock()
	for src, d := range deltas {
		if d > 0 {
			m.switches[src].Add(float64(d))
		}
	}
}

// Observer adapts the bridge to sim.Config.Observer.
func (m *Metrics) Observer() func(sim.StepInfo) { return m.Observe }
