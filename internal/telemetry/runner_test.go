package telemetry

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"heb/internal/obs"
	"heb/internal/runner"
)

func TestRunnerMetricsCountsCells(t *testing.T) {
	reg := obs.NewRegistry()
	var prog runner.Progress
	m := NewRunnerMetrics(reg, &prog, 2)
	defer m.Detach()

	_, err := runner.MapProgress(context.Background(), 6, 2, &prog, func(_ context.Context, i int) (int, error) {
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Sample()

	if v, _ := reg.Get("heb_runner_cells_completed_total"); v != 6 {
		t.Fatalf("completed = %g, want 6", v)
	}
	if v, _ := reg.Get("heb_runner_cells_failed_total"); v != 0 {
		t.Fatalf("failed = %g, want 0", v)
	}
	if v, _ := reg.Get("heb_runner_workers"); v != 2 {
		t.Fatalf("workers = %g, want 2", v)
	}
	if v, _ := reg.Get("heb_runner_cell_seconds_count"); v != 6 {
		t.Fatalf("histogram count = %g, want 6", v)
	}
	if v, _ := reg.Get("heb_runner_workers_busy"); v != 0 {
		t.Fatalf("busy after completion = %g, want 0", v)
	}
	if v, _ := reg.Get("heb_runner_queue_depth"); v != 0 {
		t.Fatalf("queue after completion = %g, want 0", v)
	}
}

func TestRunnerMetricsCountsFailures(t *testing.T) {
	reg := obs.NewRegistry()
	var prog runner.Progress
	m := NewRunnerMetrics(reg, &prog, 1)
	defer m.Detach()

	_, _ = runner.MapProgress(context.Background(), 3, 1, &prog, func(_ context.Context, i int) (int, error) {
		if i == 1 {
			return 0, context.Canceled
		}
		return i, nil
	})
	if v, _ := reg.Get("heb_runner_cells_failed_total"); v < 1 {
		t.Fatalf("failed = %g, want >= 1", v)
	}
}

func TestProcMetricsSample(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewProcMetrics(reg)
	p.Sample()
	if v, ok := reg.Get("heb_proc_heap_alloc_bytes"); !ok || v <= 0 {
		t.Fatalf("heap_alloc = %g, %v", v, ok)
	}
	if v, ok := reg.Get("heb_proc_goroutines"); !ok || v < 1 {
		t.Fatalf("goroutines = %g, %v", v, ok)
	}
}

func TestProcMetricsHandlerSamplesPerScrape(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewProcMetrics(reg)
	h := p.Handler(reg.Handler())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"heb_proc_heap_alloc_bytes",
		"heb_proc_goroutines",
		"heb_proc_gc_runs_total",
		"heb_proc_gc_pause_seconds_total",
		"heb_proc_heap_objects",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %s", want)
		}
	}
}
