package telemetry

import (
	"net/http"
	"runtime"
	"sync"

	"heb/internal/obs"
)

// ProcMetrics exports the process's own runtime health as the
// heb_proc_* family:
//
//	heb_proc_heap_alloc_bytes      gauge, live heap bytes
//	heb_proc_heap_objects          gauge, live heap objects
//	heb_proc_goroutines            gauge
//	heb_proc_gc_runs_total         counter, completed GC cycles
//	heb_proc_gc_pause_seconds_total counter, cumulative stop-the-world pause
//
// Values are pulled: call Sample before serving /metrics (or wrap the
// registry handler with Handler, which does it per scrape).
type ProcMetrics struct {
	heapAlloc   *obs.Gauge
	heapObjects *obs.Gauge
	goroutines  *obs.Gauge
	gcRuns      *obs.Counter
	gcPause     *obs.Counter

	mu          sync.Mutex
	lastNumGC   uint32
	lastPauseNs uint64
}

// NewProcMetrics registers the heb_proc_* family on reg (nil gets a
// private registry).
func NewProcMetrics(reg *obs.Registry) *ProcMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &ProcMetrics{
		heapAlloc:   reg.Gauge("heb_proc_heap_alloc_bytes", "Live heap bytes (runtime.MemStats.HeapAlloc)."),
		heapObjects: reg.Gauge("heb_proc_heap_objects", "Live heap objects."),
		goroutines:  reg.Gauge("heb_proc_goroutines", "Goroutines currently running."),
		gcRuns:      reg.Counter("heb_proc_gc_runs_total", "Completed garbage collection cycles."),
		gcPause:     reg.Counter("heb_proc_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time."),
	}
}

// Sample reads the runtime state into the gauges and advances the GC
// counters by the delta since the previous sample. The whole read+apply
// runs under the mutex: concurrent scrapes each call ReadMemStats, and
// if a stale snapshot applied its delta after a fresher one, the
// unsigned subtraction would wrap and inflate the counters by ~2^32.
func (p *ProcMetrics) Sample() {
	p.mu.Lock()
	defer p.mu.Unlock()

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.heapAlloc.Set(float64(ms.HeapAlloc))
	p.heapObjects.Set(float64(ms.HeapObjects))
	p.goroutines.Set(float64(runtime.NumGoroutine()))

	if ms.NumGC >= p.lastNumGC && ms.PauseTotalNs >= p.lastPauseNs {
		p.gcRuns.Add(float64(ms.NumGC - p.lastNumGC))
		p.gcPause.Add(float64(ms.PauseTotalNs-p.lastPauseNs) / 1e9)
	}
	p.lastNumGC = ms.NumGC
	p.lastPauseNs = ms.PauseTotalNs
}

// Handler wraps next (conventionally the registry's /metrics handler) so
// every scrape sees fresh process gauges.
func (p *ProcMetrics) Handler(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p.Sample()
		next.ServeHTTP(w, r)
	})
}
