package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"heb/internal/obs"
	"heb/internal/sim"
	"heb/internal/units"
)

func snap(t float64, demand float64, mismatch bool) Snapshot {
	return Snapshot{Seconds: t, DemandW: demand, BatterySoC: 0.8, SupercapSoC: 0.9, Mismatch: mismatch}
}

func TestNewRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(0); err == nil {
		t.Error("accepted zero capacity")
	}
	if _, err := NewRecorder(-1); err == nil {
		t.Error("accepted negative capacity")
	}
}

func TestRecorderLatestAndLen(t *testing.T) {
	r := MustNewRecorder(4)
	if _, ok := r.Latest(); ok {
		t.Error("empty recorder has a latest snapshot")
	}
	if r.Len() != 0 {
		t.Errorf("empty recorder Len %d", r.Len())
	}
	r.Record(snap(1, 100, false))
	r.Record(snap(2, 200, true))
	if r.Len() != 2 {
		t.Errorf("Len %d, want 2", r.Len())
	}
	s, ok := r.Latest()
	if !ok || s.Seconds != 2 {
		t.Errorf("Latest = %+v ok=%v", s, ok)
	}
}

func TestRecorderRingWraps(t *testing.T) {
	r := MustNewRecorder(3)
	for i := 1; i <= 5; i++ {
		r.Record(snap(float64(i), 100, false))
	}
	if r.Len() != 3 {
		t.Fatalf("Len %d, want 3", r.Len())
	}
	h := r.History(0)
	want := []float64{3, 4, 5}
	for i, w := range want {
		if h[i].Seconds != w {
			t.Fatalf("history %v, want seconds %v", h, want)
		}
	}
	// Asking for more than stored returns all, oldest first.
	h = r.History(100)
	if len(h) != 3 || h[0].Seconds != 3 {
		t.Errorf("History(100) = %v", h)
	}
	// Asking for fewer returns the most recent ones.
	h = r.History(2)
	if len(h) != 2 || h[0].Seconds != 4 || h[1].Seconds != 5 {
		t.Errorf("History(2) = %v", h)
	}
}

func TestRecorderSummary(t *testing.T) {
	r := MustNewRecorder(10)
	r.Record(Snapshot{DemandW: 300, BatterySoC: 0.9, SupercapSoC: 0.8, Mismatch: true, Off: 1})
	r.Record(Snapshot{DemandW: 250, BatterySoC: 0.5, SupercapSoC: 0.95, Mismatch: false, Off: 0})
	s := r.Summary()
	if s.Steps != 2 || s.MismatchSteps != 1 {
		t.Errorf("summary %+v", s)
	}
	if s.PeakDemandW != 300 {
		t.Errorf("peak demand %g", s.PeakDemandW)
	}
	if s.MinBatterySoC != 0.5 || s.MinSupercapSoC != 0.8 {
		t.Errorf("min SoCs %g/%g", s.MinBatterySoC, s.MinSupercapSoC)
	}
	if s.ShedServerObs != 1 {
		t.Errorf("shed observations %d", s.ShedServerObs)
	}
}

func TestObserverBridgesStepInfo(t *testing.T) {
	r := MustNewRecorder(4)
	obs := r.Observer()
	obs(sim.StepInfo{
		Now: 90 * time.Second, Demand: units.Power(333), Supply: units.Power(260),
		BatterySoC: 0.7, SupercapSoC: 0.6,
		OnUtility: 4, OnBattery: 1, OnSupercap: 1, Mismatch: true,
	})
	s, ok := r.Latest()
	if !ok {
		t.Fatal("observer did not record")
	}
	if s.Seconds != 90 || s.DemandW != 333 || s.OnBattery != 1 || !s.Mismatch {
		t.Errorf("bridged snapshot %+v", s)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := MustNewRecorder(8)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(path string) (*http.Response, error) { return http.Get(srv.URL + path) }

	resp, err := get("/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %v %v", err, resp.Status)
	}
	resp.Body.Close()

	// /latest before any data: 404.
	resp, err = get("/latest")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/latest empty: %v", resp.Status)
	}
	resp.Body.Close()

	r.Record(snap(1, 260, false))
	r.Record(snap(2, 410, true))

	resp, err = get("/latest")
	if err != nil {
		t.Fatal(err)
	}
	var latest Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&latest); err != nil {
		t.Fatalf("decode /latest: %v", err)
	}
	resp.Body.Close()
	if latest.Seconds != 2 || !latest.Mismatch {
		t.Errorf("/latest = %+v", latest)
	}

	resp, err = get("/history?n=5")
	if err != nil {
		t.Fatal(err)
	}
	var hist []Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&hist); err != nil {
		t.Fatalf("decode /history: %v", err)
	}
	resp.Body.Close()
	if len(hist) != 2 {
		t.Errorf("/history returned %d", len(hist))
	}

	resp, err = get("/history?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n accepted: %v", resp.Status)
	}
	resp.Body.Close()

	resp, err = get("/summary")
	if err != nil {
		t.Fatal(err)
	}
	var sum Summary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatalf("decode /summary: %v", err)
	}
	resp.Body.Close()
	if sum.Steps != 2 || sum.MismatchSteps != 1 {
		t.Errorf("/summary = %+v", sum)
	}
}

// TestHistoryZeroMeansAllButHTTPRejectsIt pins the History(0) contract:
// the library call returns everything held, while the HTTP endpoint
// rejects n=0 (and any non-positive n) with 400.
func TestHistoryZeroMeansAllButHTTPRejectsIt(t *testing.T) {
	r := MustNewRecorder(8)
	for i := 1; i <= 5; i++ {
		r.Record(snap(float64(i), 100, false))
	}
	if got := len(r.History(0)); got != 5 {
		t.Errorf("History(0) returned %d snapshots, want all 5", got)
	}
	if got := len(r.History(-3)); got != 5 {
		t.Errorf("History(-3) returned %d snapshots, want all 5", got)
	}

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	for _, q := range []string{"/history?n=0", "/history?n=-1"} {
		resp, err := http.Get(srv.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %v, want 400", q, resp.Status)
		}
	}
	// A positive n still works and bounds the result.
	resp, err := http.Get(srv.URL + "/history?n=2")
	if err != nil {
		t.Fatal(err)
	}
	var hist []Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&hist); err != nil {
		t.Fatalf("decode /history: %v", err)
	}
	resp.Body.Close()
	if len(hist) != 2 || hist[0].Seconds != 4 || hist[1].Seconds != 5 {
		t.Errorf("/history?n=2 = %v", hist)
	}
}

func TestMetricsBridge(t *testing.T) {
	m := NewMetrics(nil)
	step := func(mismatch bool, switches [4]int64) sim.StepInfo {
		return sim.StepInfo{
			Now: 10 * time.Second, Demand: 320, Supply: 260,
			BatterySoC: 0.7, SupercapSoC: 0.4,
			OnUtility: 4, OnBattery: 1, OnSupercap: 1,
			Mismatch: mismatch, RelaySwitches: switches,
		}
	}
	m.Observe(step(true, [4]int64{0, 2, 1, 0}))
	m.Observe(step(false, [4]int64{0, 3, 1, 1}))

	reg := m.Registry()
	want := []struct {
		name   string
		labels []obs.Label
		value  float64
	}{
		{"heb_engine_steps_total", nil, 2},
		{"heb_engine_mismatch_steps_total", nil, 1},
		{"heb_power_demand_watts", nil, 320},
		{"heb_power_supply_watts", nil, 260},
		{"heb_esd_battery_soc", nil, 0.7},
		{"heb_esd_supercap_soc", nil, 0.4},
		{"heb_power_relay_switches_total", []obs.Label{{Name: "position", Value: "battery"}}, 3},
		{"heb_power_relay_switches_total", []obs.Label{{Name: "position", Value: "supercap"}}, 1},
		{"heb_power_relay_switches_total", []obs.Label{{Name: "position", Value: "off"}}, 1},
		{"heb_power_servers", []obs.Label{{Name: "position", Value: "utility"}}, 4},
		{"heb_power_servers", []obs.Label{{Name: "position", Value: "off"}}, 0},
	}
	for _, w := range want {
		got, ok := reg.Get(w.name, w.labels...)
		if !ok {
			t.Errorf("metric %s%v missing", w.name, w.labels)
			continue
		}
		if got != w.value {
			t.Errorf("%s%v = %g, want %g", w.name, w.labels, got, w.value)
		}
	}
}

// TestMetricsEndpointServesEngineCounters drives the bridge through an
// httptest server the way cmd/hebmon mounts it.
func TestMetricsEndpointServesEngineCounters(t *testing.T) {
	m := NewMetrics(nil)
	m.Observe(sim.StepInfo{Demand: 300, Supply: 260, Mismatch: true,
		BatterySoC: 0.9, SupercapSoC: 0.8, RelaySwitches: [4]int64{0, 1, 0, 0}})
	srv := httptest.NewServer(m.Registry().Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	text := string(body)
	for _, line := range []string{
		"heb_engine_steps_total 1",
		"heb_engine_mismatch_steps_total 1",
		`heb_power_relay_switches_total{position="battery"} 1`,
		"heb_esd_battery_soc 0.9",
		"# TYPE heb_engine_steps_total counter",
	} {
		if !strings.Contains(text, line) {
			t.Errorf("/metrics missing %q:\n%s", line, text)
		}
	}
}

func TestRecorderConcurrentAccess(t *testing.T) {
	r := MustNewRecorder(128)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			r.Record(snap(float64(i), 100, i%2 == 0))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			r.Latest()
			r.History(10)
			r.Summary()
		}
	}()
	wg.Wait()
	if r.Summary().Steps != 1000 {
		t.Errorf("steps %d, want 1000", r.Summary().Steps)
	}
}

func TestCurvesEndpoint(t *testing.T) {
	r := MustNewRecorder(16)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/curves")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/curves with no data: %v", resp.Status)
	}
	resp.Body.Close()

	for i := 0; i < 10; i++ {
		r.Record(Snapshot{Seconds: float64(i), DemandW: 200 + 20*float64(i), BatterySoC: 0.9, SupercapSoC: 0.5})
	}
	resp, err = http.Get(srv.URL + "/curves?w=20")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, label := range []string{"demand W", "batt SoC", "SC SoC"} {
		if !strings.Contains(text, label) {
			t.Errorf("/curves missing %q:\n%s", label, text)
		}
	}
	resp, err = http.Get(srv.URL + "/curves?w=bogus")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad width accepted: %v", resp.Status)
	}
	resp.Body.Close()
}
