package telemetry

import (
	"math"
	"net/http"
	"runtime/metrics"
	"sync"

	"heb/internal/obs"
)

// RuntimeMetrics exports a curated slice of runtime/metrics as the
// heb_runtime_* family — the scheduler- and GC-level signals the
// heb_proc_* MemStats view cannot see:
//
//	heb_runtime_gc_pause_seconds{q}      gauge, GC stop-the-world pause quantiles
//	heb_runtime_sched_latency_seconds{q} gauge, goroutine scheduling latency quantiles
//	heb_runtime_heap_goal_bytes          gauge, the pacer's current heap target
//	heb_runtime_gomaxprocs               gauge
//	heb_runtime_cpu_utilization          gauge, 0..1 non-idle share of GOMAXPROCS
//	                                     since the previous sample
//
// The runtime publishes pauses and latencies as histograms of all-time
// totals; obs.Histogram only ingests individual observations, so the
// distributions surface as quantile-labeled gauges instead. Like
// ProcMetrics, values are pulled: call Sample before serving /metrics or
// wrap the handler.
type RuntimeMetrics struct {
	gcPause  map[string]*obs.Gauge
	schedLat map[string]*obs.Gauge
	heapGoal *obs.Gauge
	maxProcs *obs.Gauge
	cpuUtil  *obs.Gauge

	mu       sync.Mutex
	samples  []metrics.Sample
	lastIdle float64 // cumulative /cpu/classes/idle:cpu-seconds
	lastAll  float64 // cumulative /cpu/classes/total:cpu-seconds
	primed   bool
}

// runtimeQuantiles are the points reported for each runtime histogram.
var runtimeQuantiles = []struct {
	label string
	q     float64
}{{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}}

// The runtime/metrics names RuntimeMetrics reads, in samples order.
const (
	rmGCPause  = "/sched/pauses/total/gc:seconds"
	rmSchedLat = "/sched/latencies:seconds"
	rmHeapGoal = "/gc/heap/goal:bytes"
	rmMaxProcs = "/sched/gomaxprocs:threads"
	rmCPUIdle  = "/cpu/classes/idle:cpu-seconds"
	rmCPUAll   = "/cpu/classes/total:cpu-seconds"
)

// NewRuntimeMetrics registers the heb_runtime_* family on reg (nil gets a
// private registry).
func NewRuntimeMetrics(reg *obs.Registry) *RuntimeMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	r := &RuntimeMetrics{
		gcPause:  map[string]*obs.Gauge{},
		schedLat: map[string]*obs.Gauge{},
		heapGoal: reg.Gauge("heb_runtime_heap_goal_bytes", "GC pacer heap goal (/gc/heap/goal)."),
		maxProcs: reg.Gauge("heb_runtime_gomaxprocs", "GOMAXPROCS at the latest sample."),
		cpuUtil: reg.Gauge("heb_runtime_cpu_utilization",
			"Non-idle share (0..1) of available CPU since the previous sample (/cpu/classes)."),
	}
	for _, pt := range runtimeQuantiles {
		lbl := obs.Label{Name: "q", Value: pt.label}
		r.gcPause[pt.label] = reg.Gauge("heb_runtime_gc_pause_seconds",
			"GC stop-the-world pause distribution quantiles (/sched/pauses/total/gc).", lbl)
		r.schedLat[pt.label] = reg.Gauge("heb_runtime_sched_latency_seconds",
			"Goroutine scheduling latency distribution quantiles (/sched/latencies).", lbl)
	}
	r.samples = []metrics.Sample{
		{Name: rmGCPause}, {Name: rmSchedLat}, {Name: rmHeapGoal},
		{Name: rmMaxProcs}, {Name: rmCPUIdle}, {Name: rmCPUAll},
	}
	return r
}

// Sample refreshes every heb_runtime_* gauge from runtime/metrics. Safe
// for concurrent scrapes.
func (r *RuntimeMetrics) Sample() {
	r.mu.Lock()
	defer r.mu.Unlock()

	metrics.Read(r.samples)
	for i := range r.samples {
		s := &r.samples[i]
		switch s.Name {
		case rmGCPause:
			setHistogramQuantiles(r.gcPause, s.Value)
		case rmSchedLat:
			setHistogramQuantiles(r.schedLat, s.Value)
		case rmHeapGoal:
			if s.Value.Kind() == metrics.KindUint64 {
				r.heapGoal.Set(float64(s.Value.Uint64()))
			}
		case rmMaxProcs:
			if s.Value.Kind() == metrics.KindUint64 {
				r.maxProcs.Set(float64(s.Value.Uint64()))
			}
		}
	}
	r.sampleCPU()
}

// sampleCPU turns the cumulative /cpu/classes counters into a busy-share
// gauge over the window since the previous sample. Caller holds mu.
func (r *RuntimeMetrics) sampleCPU() {
	idleS, allS := r.samples[4], r.samples[5]
	if idleS.Value.Kind() != metrics.KindFloat64 || allS.Value.Kind() != metrics.KindFloat64 {
		return
	}
	idle, all := idleS.Value.Float64(), allS.Value.Float64()
	dIdle, dAll := idle-r.lastIdle, all-r.lastAll
	r.lastIdle, r.lastAll = idle, all
	if !r.primed {
		// First sample covers process lifetime, not a scrape window.
		r.primed = true
		dIdle, dAll = idle, all
	}
	if dAll > 0 && dIdle >= 0 && dIdle <= dAll {
		r.cpuUtil.Set(1 - dIdle/dAll)
	}
}

// setHistogramQuantiles projects a runtime Float64Histogram onto the
// quantile gauges.
func setHistogramQuantiles(gauges map[string]*obs.Gauge, v metrics.Value) {
	if v.Kind() != metrics.KindFloat64Histogram {
		return
	}
	h := v.Float64Histogram()
	for _, pt := range runtimeQuantiles {
		gauges[pt.label].Set(histogramQuantile(h, pt.q))
	}
}

// histogramQuantile estimates quantile q from a runtime histogram: the
// lower bound of the first bucket whose cumulative count reaches
// q*total. Buckets[i], Buckets[i+1] bound Counts[i]; infinite edges
// collapse to the nearest finite boundary. Returns 0 for an empty
// histogram.
func histogramQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			if !math.IsInf(lo, 0) {
				return lo
			}
			if !math.IsInf(hi, 0) {
				return hi
			}
			return 0
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// Handler wraps next so every scrape sees fresh runtime gauges.
func (r *RuntimeMetrics) Handler(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r.Sample()
		next.ServeHTTP(w, req)
	})
}
